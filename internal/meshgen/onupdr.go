package meshgen

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"time"

	"mrts/internal/cluster"
	"mrts/internal/core"
	"mrts/internal/geom"
	"mrts/internal/workload"
)

// ONUPDR handler IDs (the message vocabulary of §III of the paper).
const (
	hQUpdate      core.HandlerID = 201 // to queue: leaf finished / kick-off
	hLConstruct   core.HandlerID = 202 // to leaf: begin collecting its buffer
	hLSendBuffer  core.HandlerID = 203 // to buffer leaf: ship data to target
	hLAddToBuffer core.HandlerID = 204 // to leaf: one buffer member's data
	hLRelease     core.HandlerID = 205 // to buffer leaf: recreate/unlock
	hLReport      core.HandlerID = 206 // to leaf: report boundary for audit
)

// sizeParams is the serializable description of the radial sizing field, so
// a reloaded leaf can reconstruct its SizeFunc.
type sizeParams struct {
	Scale, Grading float64
	Center         geom.Point
	DMax           float64
}

func (s sizeParams) fn() workload.SizeFunc {
	return func(p geom.Point) float64 {
		return s.Scale * (1 + (s.Grading-1)*(p.Dist(s.Center)/s.DMax))
	}
}

// paramsFor fits sizeParams to the field produced by gradedSizeFor.
func paramsFor(domain geom.Rect, grading float64, target int) sizeParams {
	f := gradedSizeFor(domain, grading, target)
	c := domain.Center()
	return sizeParams{
		Scale:   f(c), // at center the graded factor is 1
		Grading: grading,
		Center:  c,
		DMax:    c.Dist(domain.Max),
	}
}

// nbData is one buffer member's contribution: its rectangle and, when
// already refined, its fixed boundary points.
type nbData struct {
	Rect geom.Rect
	Done bool
	Pts  []geom.Point
}

// leafObj is the ONUPDR mobile object: one quad-tree leaf holding its
// portion of the mesh.
type leafObj struct {
	Rect geom.Rect
	Size sizeParams
	Beta float64

	Done     bool
	Boundary []geom.Point
	MeshData []byte
	Elements int32
	Verts    int32

	// Collection state for an in-progress refinement cycle.
	QueuePtr core.MobilePtr
	MyIdx    int32
	Expect   int32
	BufPtrs  []core.MobilePtr
	Fixed    []nbData
}

func (o *leafObj) TypeID() uint16 { return typeLeaf }

func (o *leafObj) SizeHint() int {
	n := 200 + len(o.MeshData) + 16*len(o.Boundary) + 8*len(o.BufPtrs)
	for _, f := range o.Fixed {
		n += 48 + 16*len(f.Pts)
	}
	return n
}

func (o *leafObj) EncodeTo(w io.Writer) error {
	if err := writeRect(w, o.Rect); err != nil {
		return err
	}
	for _, f := range []float64{o.Size.Scale, o.Size.Grading, o.Size.Center.X, o.Size.Center.Y, o.Size.DMax, o.Beta} {
		if err := writeF64(w, f); err != nil {
			return err
		}
	}
	flags := uint32(0)
	if o.Done {
		flags = 1
	}
	if err := writeU32(w, flags); err != nil {
		return err
	}
	if err := writePoints(w, o.Boundary); err != nil {
		return err
	}
	if err := writeBytes(w, o.MeshData); err != nil {
		return err
	}
	for _, v := range []uint32{uint32(o.Elements), uint32(o.Verts), uint32(o.MyIdx), uint32(o.Expect)} {
		if err := writeU32(w, v); err != nil {
			return err
		}
	}
	if err := writePtr(w, o.QueuePtr); err != nil {
		return err
	}
	if err := writePtrs(w, o.BufPtrs); err != nil {
		return err
	}
	if err := writeU32(w, uint32(len(o.Fixed))); err != nil {
		return err
	}
	for _, f := range o.Fixed {
		if err := writeRect(w, f.Rect); err != nil {
			return err
		}
		d := uint32(0)
		if f.Done {
			d = 1
		}
		if err := writeU32(w, d); err != nil {
			return err
		}
		if err := writePoints(w, f.Pts); err != nil {
			return err
		}
	}
	return nil
}

func (o *leafObj) DecodeFrom(r io.Reader) error {
	var err error
	if o.Rect, err = readRect(r); err != nil {
		return err
	}
	fs := make([]float64, 6)
	for i := range fs {
		if fs[i], err = readF64(r); err != nil {
			return err
		}
	}
	o.Size = sizeParams{Scale: fs[0], Grading: fs[1], Center: geom.Pt(fs[2], fs[3]), DMax: fs[4]}
	o.Beta = fs[5]
	flags, err := readU32(r)
	if err != nil {
		return err
	}
	o.Done = flags&1 != 0
	if o.Boundary, err = readPoints(r); err != nil {
		return err
	}
	if o.MeshData, err = readBytes(r); err != nil {
		return err
	}
	if len(o.MeshData) == 0 {
		o.MeshData = nil
	}
	var vs [4]uint32
	for i := range vs {
		if vs[i], err = readU32(r); err != nil {
			return err
		}
	}
	o.Elements, o.Verts = int32(vs[0]), int32(vs[1])
	o.MyIdx, o.Expect = int32(vs[2]), int32(vs[3])
	if o.QueuePtr, err = readPtr(r); err != nil {
		return err
	}
	if o.BufPtrs, err = readPtrs(r); err != nil {
		return err
	}
	nf, err := readU32(r)
	if err != nil {
		return err
	}
	o.Fixed = nil
	for i := uint32(0); i < nf; i++ {
		var f nbData
		if f.Rect, err = readRect(r); err != nil {
			return err
		}
		d, err := readU32(r)
		if err != nil {
			return err
		}
		f.Done = d == 1
		if f.Pts, err = readPoints(r); err != nil {
			return err
		}
		o.Fixed = append(o.Fixed, f)
	}
	return nil
}

// qleaf is the refinement queue's record of one leaf.
type qleaf struct {
	Rect     geom.Rect
	Ptr      core.MobilePtr
	Nbs      []int32
	Done     bool
	InFlight bool
}

// queueObj is the ONUPDR refinement queue mobile object: it owns the
// quad-tree structure and dispatches leaves whose buffer zones are free.
// The paper locks it in memory ("it is relatively small and receives and
// sends many messages").
type queueObj struct {
	Leaves      []qleaf
	Pending     []int32
	Inflight    int32
	MaxInflight int32
	DoneCount   int32
	Elements    int64
	Verts       int64
	UseMcast    bool
}

func (o *queueObj) TypeID() uint16 { return typeQueue }

func (o *queueObj) SizeHint() int {
	n := 64 + 4*len(o.Pending)
	for _, l := range o.Leaves {
		n += 56 + 4*len(l.Nbs)
	}
	return n
}

func (o *queueObj) EncodeTo(w io.Writer) error {
	if err := writeU32(w, uint32(len(o.Leaves))); err != nil {
		return err
	}
	for _, l := range o.Leaves {
		if err := writeRect(w, l.Rect); err != nil {
			return err
		}
		if err := writePtr(w, l.Ptr); err != nil {
			return err
		}
		if err := writeU32(w, uint32(len(l.Nbs))); err != nil {
			return err
		}
		for _, nb := range l.Nbs {
			if err := writeU32(w, uint32(nb)); err != nil {
				return err
			}
		}
		flags := uint32(0)
		if l.Done {
			flags |= 1
		}
		if l.InFlight {
			flags |= 2
		}
		if err := writeU32(w, flags); err != nil {
			return err
		}
	}
	if err := writeU32(w, uint32(len(o.Pending))); err != nil {
		return err
	}
	for _, p := range o.Pending {
		if err := writeU32(w, uint32(p)); err != nil {
			return err
		}
	}
	mc := uint32(0)
	if o.UseMcast {
		mc = 1
	}
	for _, v := range []uint32{uint32(o.Inflight), uint32(o.MaxInflight), uint32(o.DoneCount), mc} {
		if err := writeU32(w, v); err != nil {
			return err
		}
	}
	if err := writeF64(w, float64(o.Elements)); err != nil {
		return err
	}
	return writeF64(w, float64(o.Verts))
}

func (o *queueObj) DecodeFrom(r io.Reader) error {
	n, err := readU32(r)
	if err != nil {
		return err
	}
	o.Leaves = make([]qleaf, n)
	for i := range o.Leaves {
		l := &o.Leaves[i]
		if l.Rect, err = readRect(r); err != nil {
			return err
		}
		if l.Ptr, err = readPtr(r); err != nil {
			return err
		}
		nn, err := readU32(r)
		if err != nil {
			return err
		}
		l.Nbs = make([]int32, nn)
		for k := range l.Nbs {
			v, err := readU32(r)
			if err != nil {
				return err
			}
			l.Nbs[k] = int32(v)
		}
		flags, err := readU32(r)
		if err != nil {
			return err
		}
		l.Done = flags&1 != 0
		l.InFlight = flags&2 != 0
	}
	np, err := readU32(r)
	if err != nil {
		return err
	}
	o.Pending = make([]int32, np)
	for i := range o.Pending {
		v, err := readU32(r)
		if err != nil {
			return err
		}
		o.Pending[i] = int32(v)
	}
	var vs [4]uint32
	for i := range vs {
		if vs[i], err = readU32(r); err != nil {
			return err
		}
	}
	o.Inflight, o.MaxInflight, o.DoneCount = int32(vs[0]), int32(vs[1]), int32(vs[2])
	o.UseMcast = vs[3] == 1
	e, err := readF64(r)
	if err != nil {
		return err
	}
	v, err := readF64(r)
	if err != nil {
		return err
	}
	o.Elements, o.Verts = int64(e), int64(v)
	return nil
}

// onupdrShared collects the audit data the driver reads after termination.
type onupdrShared struct {
	mu      sync.Mutex
	reports []struct {
		rect geom.Rect
		pts  []geom.Point
	}
}

// registerONUPDR installs the ONUPDR handlers on every node.
func registerONUPDR(cl *cluster.Cluster, sh *onupdrShared) {
	for _, rt := range cl.Runtimes() {
		rt.Register(hQUpdate, func(c *core.Ctx, arg []byte) {
			onupdrQUpdate(c, c.Object().(*queueObj), arg)
		})
		rt.Register(hLConstruct, func(c *core.Ctx, arg []byte) {
			onupdrLConstruct(c, c.Object().(*leafObj), arg)
		})
		rt.Register(hLSendBuffer, func(c *core.Ctx, arg []byte) {
			onupdrLSendBuffer(c, c.Object().(*leafObj), arg)
		})
		rt.Register(hLAddToBuffer, func(c *core.Ctx, arg []byte) {
			onupdrLAddToBuffer(c, c.Object().(*leafObj), arg)
		})
		rt.Register(hLRelease, func(c *core.Ctx, arg []byte) {
			c.Unlock(c.Self)
		})
		rt.Register(hLReport, func(c *core.Ctx, arg []byte) {
			o := c.Object().(*leafObj)
			sh.mu.Lock()
			sh.reports = append(sh.reports, struct {
				rect geom.Rect
				pts  []geom.Point
			}{o.Rect, o.Boundary})
			sh.mu.Unlock()
		})
	}
}

// Argument encodings for the ONUPDR messages.

func encodeQUpdate(leafIdx int32, elems, verts int32) []byte {
	var buf bytes.Buffer
	writeU32(&buf, uint32(leafIdx))
	writeU32(&buf, uint32(elems))
	writeU32(&buf, uint32(verts))
	return buf.Bytes()
}

func decodeQUpdate(b []byte) (leafIdx, elems, verts int32, err error) {
	r := bytes.NewReader(b)
	var vs [3]uint32
	for i := range vs {
		if vs[i], err = readU32(r); err != nil {
			return
		}
	}
	return int32(vs[0]), int32(vs[1]), int32(vs[2]), nil
}

func encodeLConstruct(queue core.MobilePtr, myIdx int32, bufPtrs []core.MobilePtr) []byte {
	var buf bytes.Buffer
	writePtr(&buf, queue)
	writeU32(&buf, uint32(myIdx))
	writePtrs(&buf, bufPtrs)
	return buf.Bytes()
}

func encodeLSendBuffer(target core.MobilePtr) []byte {
	var buf bytes.Buffer
	writePtr(&buf, target)
	return buf.Bytes()
}

func encodeLAddToBuffer(rect geom.Rect, done bool, pts []geom.Point) []byte {
	var buf bytes.Buffer
	writeRect(&buf, rect)
	d := uint32(0)
	if done {
		d = 1
	}
	writeU32(&buf, d)
	writePoints(&buf, pts)
	return buf.Bytes()
}

// onupdrQUpdate is the refinement queue's handler: record a finished leaf,
// then dispatch every startable leaf whose buffer region is free.
func onupdrQUpdate(c *core.Ctx, q *queueObj, arg []byte) {
	leafIdx, elems, verts, err := decodeQUpdate(arg)
	if err != nil {
		return
	}
	if leafIdx >= 0 {
		q.Leaves[leafIdx].Done = true
		q.Leaves[leafIdx].InFlight = false
		q.DoneCount++
		q.Inflight--
		q.Elements += int64(elems)
		q.Verts += int64(verts)
	}
	// Busy set: every in-flight leaf and its buffer zone.
	busy := make(map[int32]bool)
	for i := range q.Leaves {
		if q.Leaves[i].InFlight {
			busy[int32(i)] = true
			for _, nb := range q.Leaves[i].Nbs {
				busy[nb] = true
			}
		}
	}
	for pi := 0; pi < len(q.Pending); pi++ {
		if q.Inflight >= q.MaxInflight {
			break
		}
		li := q.Pending[pi]
		if busy[li] {
			continue
		}
		conflict := false
		for _, nb := range q.Leaves[li].Nbs {
			if busy[nb] {
				conflict = true
				break
			}
		}
		if conflict {
			continue
		}
		// Dispatch leaf li.
		q.Pending = append(q.Pending[:pi], q.Pending[pi+1:]...)
		pi--
		q.Leaves[li].InFlight = true
		q.Inflight++
		busy[li] = true
		for _, nb := range q.Leaves[li].Nbs {
			busy[nb] = true
		}
		var bufPtrs []core.MobilePtr
		for _, nb := range q.Leaves[li].Nbs {
			bufPtrs = append(bufPtrs, q.Leaves[nb].Ptr)
		}
		leafPtr := q.Leaves[li].Ptr
		// Raise the priority of an in-core leaf about to be refined, as
		// the paper's optimization does, to keep it resident.
		c.SetPriority(leafPtr, 10)
		arg := encodeLConstruct(c.Self, li, bufPtrs)
		if q.UseMcast {
			// The experimental multicast mobile message: collect the leaf
			// and its buffer zone on one node, in core, then deliver the
			// construct message to the leaf only (deliverCount 1).
			vec := append([]core.MobilePtr{leafPtr}, bufPtrs...)
			c.Runtime().PostMulticast(vec, 1, hLConstruct, arg)
		} else {
			c.Post(leafPtr, hLConstruct, arg)
		}
	}
}

// onupdrLConstruct starts a leaf's buffer collection: it asks every buffer
// member to ship its data.
func onupdrLConstruct(c *core.Ctx, o *leafObj, arg []byte) {
	r := bytes.NewReader(arg)
	queue, err := readPtr(r)
	if err != nil {
		return
	}
	idx, err := readU32(r)
	if err != nil {
		return
	}
	ptrs, err := readPtrs(r)
	if err != nil {
		return
	}
	o.QueuePtr = queue
	o.MyIdx = int32(idx)
	o.BufPtrs = ptrs
	o.Expect = int32(len(ptrs))
	o.Fixed = nil
	if o.Expect == 0 {
		onupdrRefine(c, o)
		return
	}
	sb := encodeLSendBuffer(c.Self)
	for _, p := range ptrs {
		if !c.CallInline(p, hLSendBuffer, sb) {
			c.Post(p, hLSendBuffer, sb)
		}
	}
}

// onupdrLSendBuffer runs on a buffer member: it locks itself in core (the
// paper's optimization) and ships its rectangle plus fixed boundary to the
// refining leaf.
func onupdrLSendBuffer(c *core.Ctx, o *leafObj, arg []byte) {
	r := bytes.NewReader(arg)
	target, err := readPtr(r)
	if err != nil {
		return
	}
	if !c.Lock(c.Self) {
		// Self is local while its handler runs; a failed pin means the
		// object is already gone — do not ship data on its behalf.
		return
	}
	payload := encodeLAddToBuffer(o.Rect, o.Done, o.Boundary)
	if !c.CallInline(target, hLAddToBuffer, payload) {
		c.Post(target, hLAddToBuffer, payload)
	}
}

// onupdrLAddToBuffer integrates one buffer member's data; when the last one
// arrives the leaf refines immediately (the paper calls the refine handler
// directly rather than posting a message).
func onupdrLAddToBuffer(c *core.Ctx, o *leafObj, arg []byte) {
	r := bytes.NewReader(arg)
	rect, err := readRect(r)
	if err != nil {
		return
	}
	d, err := readU32(r)
	if err != nil {
		return
	}
	pts, err := readPoints(r)
	if err != nil {
		return
	}
	o.Fixed = append(o.Fixed, nbData{Rect: rect, Done: d == 1, Pts: pts})
	o.Expect--
	if o.Expect == 0 {
		onupdrRefine(c, o)
	}
}

// onupdrRefine does the actual work: meshes the leaf with neighbor-fixed
// boundary portions, stores the mesh, reports to the queue and releases the
// buffer members.
func onupdrRefine(c *core.Ctx, o *leafObj) {
	var fixed []fixedPortion
	for _, f := range o.Fixed {
		if !f.Done {
			continue
		}
		a, b, ok := sharedEdge(o.Rect, f.Rect)
		if !ok {
			continue
		}
		fixed = append(fixed, fixedPortion{A: a, B: b, Pts: edgePointsOn(f.Pts, a, b)})
	}
	m, cycle, err := meshLeaf(o.Rect, o.Size.fn(), o.Beta, fixed)
	if err == nil {
		var buf bytes.Buffer
		if m.EncodeTo(&buf) == nil {
			o.MeshData = buf.Bytes()
		}
		o.Boundary = cycle
		o.Elements = int32(m.NumTriangles())
		o.Verts = int32(m.NumVertices())
		o.Done = true
	}
	o.Fixed = nil
	for _, p := range o.BufPtrs {
		if !c.CallInline(p, hLRelease, nil) {
			c.Post(p, hLRelease, nil)
		}
	}
	o.BufPtrs = nil
	c.SetPriority(c.Self, 0)
	c.Post(o.QueuePtr, hQUpdate, encodeQUpdate(o.MyIdx, o.Elements, o.Verts))
}

// RunONUPDR executes the out-of-core non-uniform method on an MRTS cluster.
func RunONUPDR(cl *cluster.Cluster, cfg NUPDRConfig) (Result, error) {
	if err := cfg.defaults(); err != nil {
		return Result{}, err
	}
	start := time.Now()
	sh := &onupdrShared{}
	registerONUPDR(cl, sh)

	domain := geom.NewRect(geom.Pt(0, 0), geom.Pt(1, 1))
	sp := paramsFor(domain, cfg.Grading, cfg.TargetElements)
	tree := buildLeafTree(domain, sp.fn(), cfg.MaxLeafElems)
	leaves := tree.Leaves()
	n := len(leaves)
	idxOf := make(map[int32]int32, n)
	for i, l := range leaves {
		idxOf[int32(l)] = int32(i)
	}

	// Create leaf objects round-robin across nodes; the queue lives on
	// node 0 and is locked in memory. More leaves than PEs stay in flight
	// so a leaf waiting on buffer loads never idles a PE (the flexibility
	// the paper's over-decomposition buys).
	q := &queueObj{MaxInflight: int32(2 * cl.PEs()), UseMcast: cfg.UseMulticast}
	for i, l := range leaves {
		node := i % cl.Nodes()
		ptr := cl.RT(node).CreateObject(&leafObj{
			Rect: tree.Bounds(l),
			Size: sp,
			Beta: cfg.QualityBound,
		})
		var nbs []int32
		for _, nb := range tree.Neighbors(l) {
			nbs = append(nbs, idxOf[int32(nb)])
		}
		q.Leaves = append(q.Leaves, qleaf{Rect: tree.Bounds(l), Ptr: ptr, Nbs: nbs})
		q.Pending = append(q.Pending, int32(i))
	}
	qptr := cl.RT(0).CreateObject(q)
	if !cl.RT(0).Lock(qptr) {
		return Result{}, fmt.Errorf("meshgen: ONUPDR queue object %v not local after create", qptr)
	}

	// Kick off and hand control to the runtime.
	cl.RT(0).Post(qptr, hQUpdate, encodeQUpdate(-1, 0, 0))
	cl.Wait()

	if q.DoneCount != int32(n) {
		return Result{}, fmt.Errorf("meshgen: ONUPDR incomplete: %d of %d leaves", q.DoneCount, n)
	}

	// Audit conformity: ask every leaf to report its boundary, then check
	// all shared edges.
	for _, l := range q.Leaves {
		cl.RT(int(l.Ptr.Home)).Post(l.Ptr, hLReport, nil)
	}
	cl.Wait()
	conforming := auditConformity(sh)

	return Result{
		Method:     "ONUPDR",
		Elements:   int(q.Elements),
		Vertices:   int(q.Verts),
		Subdomains: n,
		PEs:        cl.PEs(),
		Elapsed:    time.Since(start),
		Report:     cl.Report(),
		Mem:        cl.MemStats(),
		Conforming: conforming,
	}, nil
}

func auditConformity(sh *onupdrShared) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	rs := sh.reports
	for i := range rs {
		for j := i + 1; j < len(rs); j++ {
			a, b, ok := sharedEdge(rs[i].rect, rs[j].rect)
			if !ok {
				continue
			}
			pi := edgePointsOn(rs[i].pts, a, b)
			pj := edgePointsOn(rs[j].pts, a, b)
			if !samePoints(pi, pj) {
				return false
			}
		}
	}
	return true
}

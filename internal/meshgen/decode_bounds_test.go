package meshgen

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// u32le builds a little-endian u32 prefix.
func u32le(v uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return b[:]
}

// A corrupted length prefix must fail fast with a bound error, not attempt a
// multi-gigabyte allocation and then die on the short read.
func TestReadBytesRejectsHugeLength(t *testing.T) {
	r := bytes.NewReader(u32le(0xFFFFFFFF))
	if _, err := readBytes(r); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("readBytes(huge prefix) err = %v, want bound error", err)
	}
}

func TestReadPtrsRejectsHugeLength(t *testing.T) {
	r := bytes.NewReader(u32le(0xFFFFFFFF))
	if _, err := readPtrs(r); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("readPtrs(huge prefix) err = %v, want bound error", err)
	}
}

func TestReadPointsRejectsHugeLength(t *testing.T) {
	// 0x7FFFFFFF is the worst case for the old 16*int(n) math: on 32-bit it
	// overflowed int into a negative make() size (panic); on 64-bit it asked
	// for 32 GiB. Either way the bound must trip first.
	for _, n := range []uint32{0x7FFFFFFF, 0xFFFFFFFF, maxDecodeElems + 1} {
		r := bytes.NewReader(u32le(n))
		if _, err := readPoints(r); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
			t.Fatalf("readPoints(n=%#x) err = %v, want bound error", n, err)
		}
	}
}

// Lengths at the bound but beyond the available data must still fail cleanly
// (short read), proving the bound does not mask truncation detection.
func TestReadBytesTruncatedAtBound(t *testing.T) {
	r := bytes.NewReader(append(u32le(64), []byte("short")...))
	if _, err := readBytes(r); err == nil {
		t.Fatal("readBytes(truncated payload) succeeded, want error")
	}
}

// Object-level decode: a blockObj blob with its boundary-point count blown up
// to the maximum must surface the bound error through DecodeFrom.
func TestBlockObjDecodeCorruptPointCount(t *testing.T) {
	src := &blockObj{}
	var buf bytes.Buffer
	if err := src.EncodeTo(&buf); err != nil {
		t.Fatalf("EncodeTo: %v", err)
	}
	blob := buf.Bytes()
	// The encoding ends with the point list; corrupt every u32 position and
	// require DecodeFrom to error (never panic, never allocate unboundedly).
	for off := 0; off+4 <= len(blob); off++ {
		mut := append([]byte(nil), blob...)
		binary.LittleEndian.PutUint32(mut[off:off+4], 0xFFFFFFF0)
		dst := &blockObj{}
		if err := dst.DecodeFrom(bytes.NewReader(mut)); err == nil {
			// Some offsets legitimately decode (e.g. float payload bytes);
			// only the length prefixes must trip. Re-decoding valid data is
			// fine — the invariant is "no panic, no huge alloc".
			continue
		}
	}
}

package meshgen

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"mrts/internal/delaunay"
	"mrts/internal/geom"
	"mrts/internal/mesh"
	"mrts/internal/quadtree"
	"mrts/internal/workload"
)

// NUPDRConfig configures a non-uniform (graded) parallel Delaunay refinement
// run over the unit square with a radially graded sizing field (the paper
// runs NUPDR on a pipe cross-section; a square with radial grading exercises
// the same non-uniformity, see DESIGN.md).
type NUPDRConfig struct {
	// TargetElements is the approximate total element count.
	TargetElements int
	// PEs is the number of processing elements.
	PEs int
	// QualityBound is the radius-edge bound (0 = default √2).
	QualityBound float64
	// Grading is the coarse-to-fine size ratio across the domain (default 6).
	Grading float64
	// MaxLeafElems bounds the estimated elements per quad-tree leaf
	// (default 2000); it controls the over-decomposition.
	MaxLeafElems int
	// UseMulticast makes the out-of-core build dispatch leaves with the
	// paper's experimental multicast mobile message: the runtime first
	// collects the leaf and its whole buffer zone onto one node, in core,
	// and only then delivers the construct-buffer message (deliverCount 1).
	// Ignored by the in-core build.
	UseMulticast bool
}

func (c *NUPDRConfig) defaults() error {
	if c.TargetElements <= 0 {
		return fmt.Errorf("meshgen: TargetElements must be positive")
	}
	if c.PEs <= 0 {
		c.PEs = 1
	}
	if c.Grading <= 1 {
		c.Grading = 6
	}
	if c.MaxLeafElems <= 0 {
		c.MaxLeafElems = 2000
	}
	return nil
}

// elementsPerUnitArea is the calibration constant linking a size field h to
// an element count: elements ≈ k · ∫ dA/h².
const elementsPerUnitArea = 3.4

// gradedSizeFor builds the radial sizing field h(p) = s·(1 + (Grading−1)·d)
// (d = distance from the domain center, normalized) and solves the scale s
// numerically so the refined mesh lands near target elements.
func gradedSizeFor(domain geom.Rect, grading float64, target int) workload.SizeFunc {
	c := domain.Center()
	dmax := c.Dist(domain.Max)
	g := func(p geom.Point) float64 {
		return 1 + (grading-1)*(p.Dist(c)/dmax)
	}
	// integral = ∫ dA / g² over a sample grid.
	const n = 64
	var integral float64
	dx := domain.W() / n
	dy := domain.H() / n
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			p := geom.Pt(domain.Min.X+(float64(i)+0.5)*dx, domain.Min.Y+(float64(j)+0.5)*dy)
			gi := g(p)
			integral += dx * dy / (gi * gi)
		}
	}
	// target = k/s² · integral  →  s = sqrt(k·integral/target).
	s := math.Sqrt(elementsPerUnitArea * integral / float64(target))
	return func(p geom.Point) float64 { return s * g(p) }
}

// buildLeafTree builds the balanced quad-tree whose leaves each hold at most
// roughly maxLeafElems elements under the sizing field.
func buildLeafTree(domain geom.Rect, size workload.SizeFunc, maxLeafElems int) *quadtree.Tree {
	t := quadtree.New(domain)
	leafDim := func(p geom.Point) float64 {
		return size(p) * math.Sqrt(float64(maxLeafElems)/elementsPerUnitArea)
	}
	t.RefineToSize(leafDim, 0)
	t.Balance()
	return t
}

// fixedPortion is a stretch of a leaf's boundary whose point set was already
// fixed by a refined neighbor: the buffer-zone data flowing through the
// add-to-buffer messages.
type fixedPortion struct {
	A, B geom.Point
	Pts  []geom.Point
}

// assembleLeafBoundary builds the final boundary point cycle of a leaf: on
// portions fixed by refined neighbors the neighbor's points are reused
// verbatim; elsewhere points are placed deterministically at the local size,
// always including the dyadic edge midpoint (the 2:1 T-junction anchor).
func assembleLeafBoundary(rect geom.Rect, size workload.SizeFunc, fixed []fixedPortion) []geom.Point {
	corners := [4]geom.Point{
		rect.Min,
		geom.Pt(rect.Max.X, rect.Min.Y),
		rect.Max,
		geom.Pt(rect.Min.X, rect.Max.Y),
	}
	var cycle []geom.Point
	seen := make(map[geom.Point]bool)
	push := func(p geom.Point) {
		if !seen[p] {
			seen[p] = true
			cycle = append(cycle, p)
		}
	}
	for e := 0; e < 4; e++ {
		a := corners[e]
		b := corners[(e+1)%4]
		pts := edgePointCycle(a, b, size, fixed)
		for _, p := range pts[:len(pts)-1] { // drop b; next edge starts with it
			push(p)
		}
	}
	return cycle
}

// edgePointCycle returns the ordered points on edge (a, b) including both
// endpoints.
func edgePointCycle(a, b geom.Point, size workload.SizeFunc, fixed []fixedPortion) []geom.Point {
	d := b.Sub(a)
	den := d.Dot(d)
	param := func(p geom.Point) float64 { return p.Sub(a).Dot(d) / den }
	at := func(t float64) geom.Point {
		if t <= 0 {
			return a
		}
		if t >= 1 {
			return b
		}
		return geom.Pt(a.X+d.X*t, a.Y+d.Y*t)
	}

	// Collect fixed intervals on this edge.
	type iv struct {
		t0, t1 float64
		pts    []geom.Point
	}
	var ivs []iv
	for _, f := range fixed {
		// Portion must be collinear with this edge and overlap it.
		if geom.Orient2D(a, b, f.A) != geom.Zero || geom.Orient2D(a, b, f.B) != geom.Zero {
			continue
		}
		t0, t1 := param(f.A), param(f.B)
		if t0 > t1 {
			t0, t1 = t1, t0
		}
		if t1 <= 0 || t0 >= 1 {
			continue
		}
		if t0 < 0 {
			t0 = 0
		}
		if t1 > 1 {
			t1 = 1
		}
		var pts []geom.Point
		for _, p := range f.Pts {
			if geom.OnSegment(a, b, p) {
				pts = append(pts, p)
			}
		}
		sort.Slice(pts, func(i, j int) bool { return param(pts[i]) < param(pts[j]) })
		ivs = append(ivs, iv{t0, t1, pts})
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].t0 < ivs[j].t0 })

	// Walk the edge: fixed intervals verbatim, gaps deterministically.
	var out []geom.Point
	emit := func(p geom.Point) {
		if len(out) == 0 || !out[len(out)-1].Eq(p) {
			out = append(out, p)
		}
	}
	fillGap := func(t0, t1 float64) {
		if t1-t0 <= 1e-12 {
			return
		}
		// Force the dyadic midpoint of the edge when inside the gap.
		const tm = 0.5
		if t0 < tm && tm < t1 {
			fillUniform(t0, tm, a, b, at, size, emit)
			fillUniform(tm, t1, a, b, at, size, emit)
			return
		}
		fillUniform(t0, t1, a, b, at, size, emit)
	}
	cur := 0.0
	emit(a)
	for _, v := range ivs {
		if v.t0 > cur {
			fillGap(cur, v.t0)
		}
		for _, p := range v.pts {
			emit(p)
		}
		if v.t1 > cur {
			cur = v.t1
		}
	}
	if cur < 1 {
		fillGap(cur, 1)
	}
	emit(b)
	return out
}

// fillUniform emits evenly spaced points on the parameter interval (t0, t1)
// of edge (a, b), endpoints included, at most size(mid) apart.
func fillUniform(t0, t1 float64, a, b geom.Point, at func(float64) geom.Point,
	size workload.SizeFunc, emit func(geom.Point)) {
	p0, p1 := at(t0), at(t1)
	h := size(p0.Mid(p1))
	n := int(math.Ceil(p0.Dist(p1)/h - 1e-9))
	if n < 1 {
		n = 1
	}
	for k := 0; k <= n; k++ {
		emit(at(t0 + (t1-t0)*float64(k)/float64(n)))
	}
}

// meshLeaf builds the leaf's graded mesh: CDT of the assembled boundary
// cycle, refined by the sizing field with frozen boundary segments.
func meshLeaf(rect geom.Rect, size workload.SizeFunc, beta float64, fixed []fixedPortion) (*mesh.Mesh, []geom.Point, error) {
	cycle := assembleLeafBoundary(rect, size, fixed)
	p := &delaunay.PSLG{Points: cycle}
	for i := range cycle {
		p.Segments = append(p.Segments, [2]int{i, (i + 1) % len(cycle)})
	}
	m, _, err := delaunay.BuildCDT(p)
	if err != nil {
		return nil, nil, fmt.Errorf("meshgen: leaf CDT: %w", err)
	}
	if _, err := delaunay.Refine(m, delaunay.Options{
		QualityBound:   beta,
		SizeFunc:       size,
		NoSegmentSplit: true,
	}); err != nil {
		return nil, nil, fmt.Errorf("meshgen: leaf refine: %w", err)
	}
	return m, cycle, nil
}

// RunNUPDR executes the in-core non-uniform method with the paper's
// master–worker structure: a refinement queue dispatches leaves to workers,
// never running two leaves with overlapping buffer zones concurrently; each
// worker meshes its leaf reusing the boundary points its refined neighbors
// fixed (the buffer-zone data).
func RunNUPDR(cfg NUPDRConfig) (Result, error) {
	if err := cfg.defaults(); err != nil {
		return Result{}, err
	}
	start := time.Now()
	domain := geom.NewRect(geom.Pt(0, 0), geom.Pt(1, 1))
	size := gradedSizeFor(domain, cfg.Grading, cfg.TargetElements)
	tree := buildLeafTree(domain, size, cfg.MaxLeafElems)
	leaves := tree.Leaves()
	n := len(leaves)
	idxOf := make(map[quadtree.NodeID]int, n)
	for i, l := range leaves {
		idxOf[l] = i
	}
	nbs := make([][]int, n)
	for i, l := range leaves {
		for _, nb := range tree.Neighbors(l) {
			nbs[i] = append(nbs[i], idxOf[nb])
		}
	}

	type state struct {
		done     bool
		boundary []geom.Point
	}
	st := make([]state, n)
	busy := make(map[int]bool) // leaves inside any in-flight region
	pending := make([]int, n)
	for i := range pending {
		pending[i] = i
	}

	type job struct {
		idx   int
		fixed []fixedPortion
	}
	type resultMsg struct {
		idx      int
		boundary []geom.Point
		elems    int
		verts    int
		err      error
	}
	jobs := make(chan job)
	results := make(chan resultMsg)
	var wg sync.WaitGroup
	for w := 0; w < cfg.PEs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for jb := range jobs {
				rect := tree.Bounds(leaves[jb.idx])
				m, cycle, err := meshLeaf(rect, size, cfg.QualityBound, jb.fixed)
				if err != nil {
					results <- resultMsg{idx: jb.idx, err: err}
					continue
				}
				results <- resultMsg{
					idx:      jb.idx,
					boundary: cycle,
					elems:    m.NumTriangles(),
					verts:    m.NumVertices(),
				}
			}
		}()
	}

	var elements, vertices int
	inflight := 0
	doneCount := 0
	var firstErr error
	for doneCount < n {
		// Dispatch every startable leaf (region-disjoint rule).
		dispatched := true
		for dispatched && inflight < cfg.PEs {
			dispatched = false
			for pi, li := range pending {
				if li < 0 {
					continue
				}
				conflict := busy[li]
				for _, nb := range nbs[li] {
					if busy[nb] {
						conflict = true
						break
					}
				}
				if conflict {
					continue
				}
				// Build the fixed portions from refined neighbors.
				var fixed []fixedPortion
				rect := tree.Bounds(leaves[li])
				for _, nb := range nbs[li] {
					if !st[nb].done {
						continue
					}
					a, b, ok := sharedEdge(rect, tree.Bounds(leaves[nb]))
					if !ok {
						continue
					}
					pts := edgePointsOn(st[nb].boundary, a, b)
					fixed = append(fixed, fixedPortion{A: a, B: b, Pts: pts})
				}
				busy[li] = true
				for _, nb := range nbs[li] {
					busy[nb] = true
				}
				pending[pi] = -1
				inflight++
				jobs <- job{idx: li, fixed: fixed}
				dispatched = true
				break
			}
		}
		// Collect one result.
		res := <-results
		inflight--
		doneCount++
		if res.err != nil && firstErr == nil {
			firstErr = res.err
		}
		st[res.idx] = state{done: true, boundary: res.boundary}
		elements += res.elems
		vertices += res.verts
		// Rebuild the busy set from the remaining in-flight leaves: a leaf
		// may buffer several concurrent regions, so blunt removal would
		// unmark too much.
		busy = make(map[int]bool)
		for i := range st {
			if !st[i].done && !contains(pending, i) { // i is in flight
				busy[i] = true
				for _, nb := range nbs[i] {
					busy[nb] = true
				}
			}
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return Result{}, firstErr
	}

	// Conformity audit across all shared edges.
	conforming := true
	for i := range leaves {
		for _, nb := range nbs[i] {
			if nb <= i {
				continue
			}
			a, b, ok := sharedEdge(tree.Bounds(leaves[i]), tree.Bounds(leaves[nb]))
			if !ok {
				continue
			}
			pi := edgePointsOn(st[i].boundary, a, b)
			pj := edgePointsOn(st[nb].boundary, a, b)
			if !samePoints(pi, pj) {
				conforming = false
			}
		}
	}

	return Result{
		Method:     "NUPDR",
		Elements:   elements,
		Vertices:   vertices,
		Subdomains: n,
		PEs:        cfg.PEs,
		Elapsed:    time.Since(start),
		Conforming: conforming,
	}, nil
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// sharedEdge returns the positive-length shared boundary segment of two
// touching axis-aligned rectangles.
func sharedEdge(a, b geom.Rect) (geom.Point, geom.Point, bool) {
	if a.Max.X == b.Min.X || b.Max.X == a.Min.X {
		x := a.Max.X
		if b.Max.X == a.Min.X {
			x = a.Min.X
		}
		y0 := math.Max(a.Min.Y, b.Min.Y)
		y1 := math.Min(a.Max.Y, b.Max.Y)
		if y0 < y1 {
			return geom.Pt(x, y0), geom.Pt(x, y1), true
		}
		return geom.Point{}, geom.Point{}, false
	}
	if a.Max.Y == b.Min.Y || b.Max.Y == a.Min.Y {
		y := a.Max.Y
		if b.Max.Y == a.Min.Y {
			y = a.Min.Y
		}
		x0 := math.Max(a.Min.X, b.Min.X)
		x1 := math.Min(a.Max.X, b.Max.X)
		if x0 < x1 {
			return geom.Pt(x0, y), geom.Pt(x1, y), true
		}
	}
	return geom.Point{}, geom.Point{}, false
}

package meshgen

import (
	"math"
	"testing"

	"mrts/internal/cluster"
	"mrts/internal/geom"
)

func TestGradedSizeForCalibration(t *testing.T) {
	domain := geom.NewRect(geom.Pt(0, 0), geom.Pt(1, 1))
	size := gradedSizeFor(domain, 6, 20000)
	// The field must be finer at the center than at the corner.
	if !(size(domain.Center()) < size(geom.Pt(0, 0))) {
		t.Error("sizing not graded")
	}
	res, err := RunNUPDR(NUPDRConfig{TargetElements: 20000, PEs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elements < 10000 || res.Elements > 40000 {
		t.Errorf("calibration off: %d elements for target 20000", res.Elements)
	}
}

func TestBuildLeafTreeBalanced(t *testing.T) {
	domain := geom.NewRect(geom.Pt(0, 0), geom.Pt(1, 1))
	size := gradedSizeFor(domain, 8, 30000)
	tree := buildLeafTree(domain, size, 1000)
	if tree.NumLeaves() < 4 {
		t.Fatalf("expected several leaves, got %d", tree.NumLeaves())
	}
	for _, leaf := range tree.Leaves() {
		for _, nb := range tree.Neighbors(leaf) {
			d := tree.Depth(nb) - tree.Depth(leaf)
			if d > 1 || d < -1 {
				t.Fatal("leaf tree not 2:1 balanced")
			}
		}
	}
}

func TestEdgePointCycleFixedPortions(t *testing.T) {
	a, b := geom.Pt(0, 0), geom.Pt(1, 0)
	size := func(geom.Point) float64 { return 0.3 }
	// No fixed portions: endpoints + forced midpoint + spacing points.
	pts := edgePointCycle(a, b, size, nil)
	if !pts[0].Eq(a) || !pts[len(pts)-1].Eq(b) {
		t.Fatal("cycle must include endpoints")
	}
	foundMid := false
	for _, p := range pts {
		if p.Eq(geom.Pt(0.5, 0)) {
			foundMid = true
		}
	}
	if !foundMid {
		t.Error("dyadic midpoint not forced")
	}
	// A fixed portion covering [0, 0.5] must be reused verbatim.
	fixedPts := []geom.Point{geom.Pt(0, 0), geom.Pt(0.123, 0), geom.Pt(0.5, 0)}
	pts = edgePointCycle(a, b, size, []fixedPortion{{
		A: geom.Pt(0, 0), B: geom.Pt(0.5, 0), Pts: fixedPts,
	}})
	if !pts[1].Eq(geom.Pt(0.123, 0)) {
		t.Errorf("fixed points not reused: %v", pts)
	}
}

func TestRunNUPDR(t *testing.T) {
	res, err := RunNUPDR(NUPDRConfig{TargetElements: 15000, PEs: 4, MaxLeafElems: 1200})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Conforming {
		t.Error("NUPDR leaves do not conform")
	}
	if res.Subdomains < 4 {
		t.Errorf("expected over-decomposition, got %d leaves", res.Subdomains)
	}
	if res.Elements < 7000 {
		t.Errorf("elements = %d", res.Elements)
	}
	t.Log(res)
}

func TestRunNUPDRSequentialConforms(t *testing.T) {
	res, err := RunNUPDR(NUPDRConfig{TargetElements: 8000, PEs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Conforming {
		t.Error("sequential NUPDR not conforming")
	}
}

func TestRunNUPDRBadConfig(t *testing.T) {
	if _, err := RunNUPDR(NUPDRConfig{}); err == nil {
		t.Fatal("zero target should fail")
	}
}

func TestRunONUPDRInCore(t *testing.T) {
	cl := newTestCluster(t, 2, 1<<30)
	res, err := RunONUPDR(cl, NUPDRConfig{TargetElements: 10000, PEs: 2, MaxLeafElems: 1200})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Conforming {
		t.Error("ONUPDR leaves do not conform")
	}
	// Compare against the in-core method: same decomposition and sizing,
	// so counts should land close (order effects shift boundaries a bit).
	ref, err := RunNUPDR(NUPDRConfig{TargetElements: 10000, PEs: 2, MaxLeafElems: 1200})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := float64(ref.Elements)*0.85, float64(ref.Elements)*1.15
	if f := float64(res.Elements); f < lo || f > hi {
		t.Errorf("ONUPDR elements %d far from NUPDR %d", res.Elements, ref.Elements)
	}
	if res.Subdomains != ref.Subdomains {
		t.Errorf("decompositions differ: %d vs %d leaves", res.Subdomains, ref.Subdomains)
	}
	t.Log(res)
}

func TestRunONUPDROutOfCore(t *testing.T) {
	cl, err := cluster.New(cluster.Config{
		Nodes:     2,
		MemBudget: 300_000,
		SpoolDir:  t.TempDir(),
		Factory:   Factory,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	res, err := RunONUPDR(cl, NUPDRConfig{TargetElements: 15000, MaxLeafElems: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Conforming {
		t.Error("OOC ONUPDR leaves do not conform")
	}
	if res.Mem.Evictions == 0 {
		t.Error("expected evictions under a 300KB budget")
	}
	if res.Elements < 7000 {
		t.Errorf("elements = %d", res.Elements)
	}
	t.Logf("OOC ONUPDR: %v; evictions=%d loads=%d", res, res.Mem.Evictions, res.Mem.Loads)
}

func TestSharedEdge(t *testing.T) {
	a := geom.NewRect(geom.Pt(0, 0), geom.Pt(0.5, 0.5))
	b := geom.NewRect(geom.Pt(0.5, 0), geom.Pt(1, 0.5))
	p, q, ok := sharedEdge(a, b)
	if !ok {
		t.Fatal("rects share an edge")
	}
	if p.X != 0.5 || q.X != 0.5 || math.Abs(q.Y-p.Y-0.5) > 1e-12 {
		t.Errorf("shared edge = %v-%v", p, q)
	}
	// Corner-touching rects share no positive-length edge.
	c := geom.NewRect(geom.Pt(0.5, 0.5), geom.Pt(1, 1))
	if _, _, ok := sharedEdge(a, c); ok {
		t.Error("corner touch should not count")
	}
	// Disjoint rects.
	d := geom.NewRect(geom.Pt(2, 2), geom.Pt(3, 3))
	if _, _, ok := sharedEdge(a, d); ok {
		t.Error("disjoint rects share nothing")
	}
	// Horizontal sharing.
	e := geom.NewRect(geom.Pt(0, 0.5), geom.Pt(0.5, 1))
	p, q, ok = sharedEdge(a, e)
	if !ok || p.Y != 0.5 || q.Y != 0.5 {
		t.Errorf("horizontal shared edge = %v-%v ok=%v", p, q, ok)
	}
}

func TestRunONUPDRMulticast(t *testing.T) {
	cl, err := cluster.New(cluster.Config{
		Nodes:     3,
		MemBudget: 1 << 20,
		Factory:   Factory,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	res, err := RunONUPDR(cl, NUPDRConfig{
		TargetElements: 8000,
		MaxLeafElems:   900,
		UseMulticast:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Conforming {
		t.Error("multicast ONUPDR leaves do not conform")
	}
	if res.Elements < 4000 {
		t.Errorf("elements = %d", res.Elements)
	}
	// Collection migrates objects around; every leaf must still be owned
	// by exactly one node.
	total := 0
	for _, rt := range cl.Runtimes() {
		total += rt.NumLocalObjects()
	}
	if total != res.Subdomains+1 { // leaves + the queue object
		t.Errorf("object count drifted: %d vs %d leaves + queue", total, res.Subdomains)
	}
	t.Log(res)
}

func TestRunONUPDRMulticastOutOfCore(t *testing.T) {
	cl, err := cluster.New(cluster.Config{
		Nodes:     2,
		MemBudget: 250_000,
		SpoolDir:  t.TempDir(),
		Factory:   Factory,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	res, err := RunONUPDR(cl, NUPDRConfig{
		TargetElements: 12000,
		MaxLeafElems:   900,
		UseMulticast:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Conforming {
		t.Error("OOC multicast ONUPDR not conforming")
	}
	t.Logf("%v evictions=%d", res, res.Mem.Evictions)
}

package meshgen

import (
	"testing"

	"mrts/internal/cluster"
	"mrts/internal/geom"
)

func TestBoundaryPointsDeterministic(t *testing.T) {
	r1 := geom.NewRect(geom.Pt(0, 0), geom.Pt(0.5, 0.5))
	r2 := geom.NewRect(geom.Pt(0.5, 0), geom.Pt(1, 0.5))
	h := 0.07
	p1 := boundaryPoints(r1, h)
	p2 := boundaryPoints(r2, h)
	// The shared edge x=0.5 must carry identical points from both sides.
	e1 := edgePointsOn(p1, geom.Pt(0.5, 0), geom.Pt(0.5, 0.5))
	e2 := edgePointsOn(p2, geom.Pt(0.5, 0), geom.Pt(0.5, 0.5))
	if len(e1) < 2 {
		t.Fatalf("too few shared-edge points: %d", len(e1))
	}
	if !samePoints(e1, e2) {
		t.Fatalf("shared edge points differ:\n%v\n%v", e1, e2)
	}
}

func TestEncodeDecodePoints(t *testing.T) {
	pts := []geom.Point{geom.Pt(1, 2), geom.Pt(-3.5, 4.25)}
	got, err := decodePoints(encodePoints(pts))
	if err != nil {
		t.Fatal(err)
	}
	if !samePoints(pts, got) {
		t.Fatalf("roundtrip mismatch: %v", got)
	}
	if _, err := decodePoints([]byte{1}); err == nil {
		t.Error("short payload should fail")
	}
}

func TestRunUPDRSequential(t *testing.T) {
	res, err := RunUPDR(UPDRConfig{Blocks: 3, TargetElements: 4000, PEs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elements < 2000 || res.Elements > 8000 {
		t.Errorf("elements = %d, want ≈4000", res.Elements)
	}
	if !res.Conforming {
		t.Error("blocks do not conform at interfaces")
	}
	if res.Subdomains != 9 {
		t.Errorf("subdomains = %d", res.Subdomains)
	}
}

func TestRunUPDRParallelMatchesSequential(t *testing.T) {
	seq, err := RunUPDR(UPDRConfig{Blocks: 4, TargetElements: 6000, PEs: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunUPDR(UPDRConfig{Blocks: 4, TargetElements: 6000, PEs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Elements != par.Elements {
		t.Errorf("element count depends on PE count: %d vs %d", seq.Elements, par.Elements)
	}
	if !par.Conforming {
		t.Error("parallel run not conforming")
	}
}

func TestRunUPDRBadConfig(t *testing.T) {
	if _, err := RunUPDR(UPDRConfig{}); err == nil {
		t.Fatal("zero target should fail")
	}
}

func newTestCluster(t *testing.T, nodes int, budget int64) *cluster.Cluster {
	t.Helper()
	cl, err := cluster.New(cluster.Config{
		Nodes:          nodes,
		WorkersPerNode: 1,
		MemBudget:      budget,
		Factory:        Factory,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl
}

func TestRunOUPDRInCore(t *testing.T) {
	// Large budget: no swapping; result must match the in-core method.
	seq, err := RunUPDR(UPDRConfig{Blocks: 3, TargetElements: 4000, PEs: 1})
	if err != nil {
		t.Fatal(err)
	}
	cl := newTestCluster(t, 2, 1<<30)
	res, err := RunOUPDR(cl, UPDRConfig{Blocks: 3, TargetElements: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elements != seq.Elements {
		t.Errorf("OUPDR elements %d != UPDR %d", res.Elements, seq.Elements)
	}
	if !res.Conforming {
		t.Error("OUPDR interfaces do not conform")
	}
	if res.Mem.Evictions != 0 {
		t.Errorf("no evictions expected with huge budget, got %d", res.Mem.Evictions)
	}
}

func TestRunOUPDROutOfCore(t *testing.T) {
	// Tiny budget: blocks must swap to disk, and the result must still be
	// identical to the in-core run.
	seq, err := RunUPDR(UPDRConfig{Blocks: 4, TargetElements: 12000, PEs: 1})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(cluster.Config{
		Nodes:     2,
		MemBudget: 200_000, // bytes; each block mesh is several 10s of KB
		SpoolDir:  t.TempDir(),
		Factory:   Factory,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	res, err := RunOUPDR(cl, UPDRConfig{Blocks: 4, TargetElements: 12000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elements != seq.Elements {
		t.Errorf("OOC run changed the mesh: %d vs %d elements", res.Elements, seq.Elements)
	}
	if !res.Conforming {
		t.Error("OOC interfaces do not conform")
	}
	if res.Mem.Evictions == 0 {
		t.Error("expected evictions under a 200KB budget")
	}
	t.Logf("OOC OUPDR: %v; evictions=%d loads=%d peak=%dKB",
		res, res.Mem.Evictions, res.Mem.Loads, res.Mem.PeakMemUsed/1024)
}

func TestRunOUPDR3InCore(t *testing.T) {
	cl := newTestCluster(t, 2, 1<<30)
	res, err := RunOUPDR3(cl, OUPDR3Config{Blocks: 2, TargetElements: 8000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elements < 2500 || res.Elements > 30000 {
		t.Errorf("elements = %d, want ≈8000 within 3x", res.Elements)
	}
	if res.Subdomains != 8 {
		t.Errorf("subdomains = %d", res.Subdomains)
	}
	t.Log(res)
}

func TestRunOUPDR3OutOfCore(t *testing.T) {
	cl, err := cluster.New(cluster.Config{
		Nodes:     2,
		MemBudget: 100_000,
		SpoolDir:  t.TempDir(),
		Factory:   Factory,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	res, err := RunOUPDR3(cl, OUPDR3Config{Blocks: 3, TargetElements: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mem.Evictions == 0 {
		t.Error("expected evictions under the tight budget")
	}
	// Re-run a second pass over the same (possibly evicted) blocks: the
	// serialized tetrahedral meshes must survive the round-trip.
	if res.Elements < 6000 {
		t.Errorf("elements = %d", res.Elements)
	}
	t.Logf("OOC OUPDR3: %v evictions=%d loads=%d", res, res.Mem.Evictions, res.Mem.Loads)
}

func TestRunOUPDR3BadConfig(t *testing.T) {
	cl := newTestCluster(t, 1, 1<<30)
	if _, err := RunOUPDR3(cl, OUPDR3Config{}); err == nil {
		t.Fatal("zero target should fail")
	}
}

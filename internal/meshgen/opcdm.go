package meshgen

import (
	"fmt"
	"io"
	"sync"
	"time"

	"mrts/internal/cluster"
	"mrts/internal/core"
	"mrts/internal/geom"
	"mrts/internal/mesh"
	"mrts/internal/workload"
)

// OPCDM handler IDs.
const (
	hSDRefine core.HandlerID = 301 // apply interface splits + refine
	hSDReport core.HandlerID = 302 // report counts and hull for the audit
	hSDWire   core.HandlerID = 303 // install neighbor pointers
)

// subdomainObj is the OPCDM mobile object: one subdomain with its live
// constrained Delaunay mesh. The mesh is serialized only when the
// out-of-core layer unloads the object (or it migrates).
type subdomainObj struct {
	Rect    geom.Rect
	MaxArea float64
	Beta    float64
	Nbs     [4]core.MobilePtr // left, right, bottom, top (Nil at domain edge)

	M *mesh.Mesh // nil until the first refine message
}

func (o *subdomainObj) TypeID() uint16 { return typeSubdomain }

func (o *subdomainObj) SizeHint() int {
	n := 128
	if o.M != nil {
		n += o.M.EncodedSize()
	}
	return n
}

func (o *subdomainObj) EncodeTo(w io.Writer) error {
	if err := writeRect(w, o.Rect); err != nil {
		return err
	}
	for _, f := range []float64{o.MaxArea, o.Beta} {
		if err := writeF64(w, f); err != nil {
			return err
		}
	}
	for _, p := range o.Nbs {
		if err := writePtr(w, p); err != nil {
			return err
		}
	}
	if o.M == nil {
		return writeU32(w, 0)
	}
	if err := writeU32(w, 1); err != nil {
		return err
	}
	return o.M.EncodeTo(w)
}

func (o *subdomainObj) DecodeFrom(r io.Reader) error {
	var err error
	if o.Rect, err = readRect(r); err != nil {
		return err
	}
	if o.MaxArea, err = readF64(r); err != nil {
		return err
	}
	if o.Beta, err = readF64(r); err != nil {
		return err
	}
	for i := range o.Nbs {
		if o.Nbs[i], err = readPtr(r); err != nil {
			return err
		}
	}
	has, err := readU32(r)
	if err != nil {
		return err
	}
	if has == 0 {
		o.M = nil
		return nil
	}
	o.M = mesh.New()
	return o.M.DecodeFrom(r)
}

// opcdmShared collects the post-run reports.
type opcdmShared struct {
	mu      sync.Mutex
	reports []opcdmReport
}

type opcdmReport struct {
	rect     geom.Rect
	elements int
	vertices int
	hull     []geom.Point
}

// registerOPCDM installs the OPCDM handlers on every node.
func registerOPCDM(cl *cluster.Cluster, sh *opcdmShared) {
	for _, rt := range cl.Runtimes() {
		rt.Register(hSDRefine, func(c *core.Ctx, arg []byte) {
			opcdmRefineHandler(c, c.Object().(*subdomainObj), arg)
		})
		rt.Register(hSDWire, func(c *core.Ctx, arg []byte) {
			o := c.Object().(*subdomainObj)
			ptrs, err := readPtrs(bytesReader(arg))
			if err != nil || len(ptrs) != 4 {
				return
			}
			copy(o.Nbs[:], ptrs)
		})
		rt.Register(hSDReport, func(c *core.Ctx, arg []byte) {
			o := c.Object().(*subdomainObj)
			rep := opcdmReport{rect: o.Rect}
			if o.M != nil {
				rep.elements = o.M.NumTriangles()
				rep.vertices = o.M.NumVertices()
				rep.hull = hullPointsOf(o.M)
			}
			sh.mu.Lock()
			sh.reports = append(sh.reports, rep)
			sh.mu.Unlock()
		})
	}
}

// opcdmRefineHandler applies incoming split points, refines the subdomain
// and ships aggregated split messages to the neighbors — the fully
// asynchronous, unstructured communication pattern of PCDM.
func opcdmRefineHandler(c *core.Ctx, o *subdomainObj, arg []byte) {
	var splits []geom.Point
	if len(arg) > 0 {
		var err error
		splits, err = decodePoints(arg)
		if err != nil {
			return
		}
	}
	if o.M == nil {
		m, err := newSubdomainMesh(o.Rect)
		if err != nil {
			return
		}
		o.M = m
	}
	var hasNb [4]bool
	for i, p := range o.Nbs {
		hasNb[i] = !p.IsNil()
	}
	out, err := refineSubdomain(o.M, o.Rect, splits, o.MaxArea, o.Beta, hasNb)
	if err != nil {
		return
	}
	for side := 0; side < 4; side++ {
		if len(out[side]) == 0 || o.Nbs[side].IsNil() {
			continue
		}
		// Small messages, aggregated per neighbor (the paper's startup
		// overhead optimization).
		c.Post(o.Nbs[side], hSDRefine, encodePoints(out[side]))
	}
}

// RunOPCDM executes the out-of-core constrained Delaunay method on an MRTS
// cluster.
func RunOPCDM(cl *cluster.Cluster, cfg PCDMConfig) (Result, error) {
	if err := cfg.defaults(); err != nil {
		return Result{}, err
	}
	start := time.Now()
	sh := &opcdmShared{}
	registerOPCDM(cl, sh)

	g := cfg.Grid
	maxArea := workload.UniformAreaFor(cfg.TargetElements, 1.0)
	ptrs := make([]core.MobilePtr, g*g)
	for j := 0; j < g; j++ {
		for i := 0; i < g; i++ {
			idx := j*g + i
			node := idx % cl.Nodes()
			o := &subdomainObj{Rect: blockRect(g, i, j), MaxArea: maxArea, Beta: cfg.QualityBound}
			ptrs[idx] = cl.RT(node).CreateObject(o)
		}
	}
	// Wire neighbor pointers through messages so the writes serialize with
	// any swapping, then start refinement. Per-pair FIFO ordering makes the
	// wire message arrive before the refine message.
	for j := 0; j < g; j++ {
		for i := 0; i < g; i++ {
			idx := j*g + i
			nbs := []core.MobilePtr{core.Nil, core.Nil, core.Nil, core.Nil}
			if i > 0 {
				nbs[sideLeft] = ptrs[idx-1]
			}
			if i+1 < g {
				nbs[sideRight] = ptrs[idx+1]
			}
			if j > 0 {
				nbs[sideBottom] = ptrs[idx-g]
			}
			if j+1 < g {
				nbs[sideTop] = ptrs[idx+g]
			}
			rt := cl.RT(int(ptrs[idx].Home))
			rt.Post(ptrs[idx], hSDWire, encodePtrList(nbs))
			rt.Post(ptrs[idx], hSDRefine, nil)
		}
	}
	cl.Wait()

	// Gather counts and hulls.
	for _, p := range ptrs {
		cl.RT(int(p.Home)).Post(p, hSDReport, nil)
	}
	cl.Wait()

	sh.mu.Lock()
	reports := sh.reports
	sh.mu.Unlock()
	if len(reports) != g*g {
		return Result{}, fmt.Errorf("meshgen: OPCDM reported %d of %d subdomains", len(reports), g*g)
	}
	elements, vertices := 0, 0
	for _, r := range reports {
		elements += r.elements
		vertices += r.vertices
	}
	conforming := opcdmAudit(reports)
	return Result{
		Method:     "OPCDM",
		Elements:   elements,
		Vertices:   vertices,
		Subdomains: g * g,
		PEs:        cl.PEs(),
		Elapsed:    time.Since(start),
		Report:     cl.Report(),
		Mem:        cl.MemStats(),
		Conforming: conforming,
	}, nil
}

func opcdmAudit(reports []opcdmReport) bool {
	for i := range reports {
		for j := i + 1; j < len(reports); j++ {
			a, b, ok := sharedEdge(reports[i].rect, reports[j].rect)
			if !ok {
				continue
			}
			pa := edgePointsOn(reports[i].hull, a, b)
			pb := edgePointsOn(reports[j].hull, a, b)
			if !samePoints(pa, pb) {
				return false
			}
		}
	}
	return true
}

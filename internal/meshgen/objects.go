package meshgen

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"mrts/internal/core"
	"mrts/internal/geom"
)

// Mobile object type IDs (shared by all O-methods; the Factory below builds
// them on reload or migration).
const (
	typeBlock     uint16 = 1 // OUPDR block
	typeLeaf      uint16 = 2 // ONUPDR quad-tree leaf
	typeQueue     uint16 = 3 // ONUPDR refinement queue
	typeSubdomain uint16 = 4 // OPCDM subdomain
	typeBlock3    uint16 = 5 // OUPDR-3D cube block
	typeSpecBlock uint16 = 6 // S-UPDR speculative block
)

// Factory constructs meshgen mobile objects by type, for the MRTS runtime.
func Factory(typeID uint16) (core.Object, error) {
	switch typeID {
	case typeBlock:
		return &blockObj{}, nil
	case typeLeaf:
		return &leafObj{}, nil
	case typeQueue:
		return &queueObj{}, nil
	case typeSubdomain:
		return &subdomainObj{}, nil
	case typeBlock3:
		return &block3Obj{}, nil
	case typeSpecBlock:
		return &specBlockObj{}, nil
	default:
		return nil, core.ErrUnknownType
	}
}

// Binary encoding helpers shared by the object implementations.

// Decode-side length bounds. Every variable-length field in the wire format
// is length-prefixed with a u32 the decoder must not trust: a corrupted or
// truncated blob could otherwise demand a multi-gigabyte allocation (or, for
// the 16*n point math, overflow int on 32-bit platforms) before ReadFull
// ever notices the data is short. The limits are far above anything the
// generators produce, so a trip always means corruption.
const (
	// maxDecodeBytes bounds a raw byte field (64 MiB).
	maxDecodeBytes = 1 << 26
	// maxDecodeElems bounds an element count (4M entries); 16*maxDecodeElems
	// still fits a 32-bit int with room to spare.
	maxDecodeElems = 1 << 22
)

// errDecodeBound reports an implausible length prefix.
func errDecodeBound(what string, n uint32, limit int) error {
	return fmt.Errorf("meshgen: decode %s: length %d exceeds limit %d (corrupt blob?)", what, n, limit)
}

func writeU32(w io.Writer, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func readU32(r io.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func writeF64(w io.Writer, v float64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	_, err := w.Write(b[:])
	return err
}

func readF64(r io.Reader) (float64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b[:])), nil
}

func writeRect(w io.Writer, r geom.Rect) error {
	for _, f := range []float64{r.Min.X, r.Min.Y, r.Max.X, r.Max.Y} {
		if err := writeF64(w, f); err != nil {
			return err
		}
	}
	return nil
}

func readRect(r io.Reader) (geom.Rect, error) {
	var f [4]float64
	for i := range f {
		v, err := readF64(r)
		if err != nil {
			return geom.Rect{}, err
		}
		f[i] = v
	}
	return geom.Rect{Min: geom.Pt(f[0], f[1]), Max: geom.Pt(f[2], f[3])}, nil
}

func writeBytes(w io.Writer, b []byte) error {
	if err := writeU32(w, uint32(len(b))); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

func readBytes(r io.Reader) ([]byte, error) {
	n, err := readU32(r)
	if err != nil {
		return nil, err
	}
	if n > maxDecodeBytes {
		return nil, errDecodeBound("bytes", n, maxDecodeBytes)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}

func writePtr(w io.Writer, p core.MobilePtr) error {
	if err := writeU32(w, uint32(p.Home)); err != nil {
		return err
	}
	return writeU32(w, p.Seq)
}

func readPtr(r io.Reader) (core.MobilePtr, error) {
	h, err := readU32(r)
	if err != nil {
		return core.Nil, err
	}
	s, err := readU32(r)
	if err != nil {
		return core.Nil, err
	}
	return core.MobilePtr{Home: core.NodeID(int32(h)), Seq: s}, nil
}

func writePtrs(w io.Writer, ps []core.MobilePtr) error {
	if err := writeU32(w, uint32(len(ps))); err != nil {
		return err
	}
	for _, p := range ps {
		if err := writePtr(w, p); err != nil {
			return err
		}
	}
	return nil
}

func readPtrs(r io.Reader) ([]core.MobilePtr, error) {
	n, err := readU32(r)
	if err != nil {
		return nil, err
	}
	if n > maxDecodeElems {
		return nil, errDecodeBound("ptrs", n, maxDecodeElems)
	}
	out := make([]core.MobilePtr, n)
	for i := range out {
		p, err := readPtr(r)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}

func writePoints(w io.Writer, pts []geom.Point) error {
	if err := writeU32(w, uint32(len(pts))); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	var b [16]byte
	for _, p := range pts {
		binary.LittleEndian.PutUint64(b[0:8], math.Float64bits(p.X))
		binary.LittleEndian.PutUint64(b[8:16], math.Float64bits(p.Y))
		if _, err := bw.Write(b[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func readPoints(r io.Reader) ([]geom.Point, error) {
	n, err := readU32(r)
	if err != nil {
		return nil, err
	}
	if n > maxDecodeElems {
		return nil, errDecodeBound("points", n, maxDecodeElems)
	}
	// Read the whole block at once: wrapping r in a buffered reader would
	// over-read and corrupt composed decoders. The bound above keeps
	// 16*int(n) from overflowing int even on 32-bit platforms.
	buf := make([]byte, 16*int(n))
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	pts := make([]geom.Point, n)
	for i := range pts {
		off := 16 * i
		pts[i].X = math.Float64frombits(binary.LittleEndian.Uint64(buf[off : off+8]))
		pts[i].Y = math.Float64frombits(binary.LittleEndian.Uint64(buf[off+8 : off+16]))
	}
	return pts, nil
}

// bytesReader adapts a byte slice into an io.Reader for the decode helpers.
func bytesReader(b []byte) io.Reader { return bytes.NewReader(b) }

// encodePtrList serializes a pointer list for message arguments.
func encodePtrList(ps []core.MobilePtr) []byte {
	var buf bytes.Buffer
	writePtrs(&buf, ps)
	return buf.Bytes()
}

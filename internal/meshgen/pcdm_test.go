package meshgen

import (
	"bytes"
	"testing"

	"mrts/internal/cluster"
	"mrts/internal/core"
	"mrts/internal/geom"
)

func TestInterfaceSide(t *testing.T) {
	r := geom.NewRect(geom.Pt(0.25, 0.25), geom.Pt(0.5, 0.5))
	cases := []struct {
		p    geom.Point
		want int
	}{
		{geom.Pt(0.25, 0.3), sideLeft},
		{geom.Pt(0.5, 0.3), sideRight},
		{geom.Pt(0.3, 0.25), sideBottom},
		{geom.Pt(0.3, 0.5), sideTop},
		{geom.Pt(0.3, 0.3), -1},
	}
	for _, c := range cases {
		if got := interfaceSide(r, c.p); got != c.want {
			t.Errorf("interfaceSide(%v) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestRunPCDMSequential(t *testing.T) {
	res, err := RunPCDM(PCDMConfig{Grid: 3, TargetElements: 6000, PEs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Conforming {
		t.Error("PCDM subdomains do not conform at interfaces")
	}
	if res.Elements < 3000 || res.Elements > 12000 {
		t.Errorf("elements = %d, want ≈6000", res.Elements)
	}
	if res.Subdomains != 9 {
		t.Errorf("subdomains = %d", res.Subdomains)
	}
	t.Log(res)
}

func TestRunPCDMParallelConforms(t *testing.T) {
	res, err := RunPCDM(PCDMConfig{Grid: 4, TargetElements: 10000, PEs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Conforming {
		t.Error("parallel PCDM not conforming")
	}
	t.Log(res)
}

func TestRunPCDMBadConfig(t *testing.T) {
	if _, err := RunPCDM(PCDMConfig{}); err == nil {
		t.Fatal("zero target should fail")
	}
}

func TestRunOPCDMInCore(t *testing.T) {
	cl := newTestCluster(t, 2, 1<<30)
	res, err := RunOPCDM(cl, PCDMConfig{Grid: 3, TargetElements: 6000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Conforming {
		t.Error("OPCDM subdomains do not conform")
	}
	ref, err := RunPCDM(PCDMConfig{Grid: 3, TargetElements: 6000, PEs: 1})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := float64(ref.Elements)*0.85, float64(ref.Elements)*1.15
	if f := float64(res.Elements); f < lo || f > hi {
		t.Errorf("OPCDM elements %d far from PCDM %d", res.Elements, ref.Elements)
	}
	t.Log(res)
}

func TestRunOPCDMOutOfCore(t *testing.T) {
	cl, err := cluster.New(cluster.Config{
		Nodes:     2,
		MemBudget: 100_000,
		SpoolDir:  t.TempDir(),
		Factory:   Factory,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	res, err := RunOPCDM(cl, PCDMConfig{Grid: 4, TargetElements: 12000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Conforming {
		t.Error("OOC OPCDM not conforming")
	}
	if res.Mem.Evictions == 0 {
		t.Error("expected evictions under a 100KB budget")
	}
	t.Logf("OOC OPCDM: %v; evictions=%d loads=%d", res, res.Mem.Evictions, res.Mem.Loads)
}

func TestSubdomainObjRoundtrip(t *testing.T) {
	m, err := newSubdomainMesh(geom.NewRect(geom.Pt(0, 0), geom.Pt(0.5, 0.5)))
	if err != nil {
		t.Fatal(err)
	}
	o := &subdomainObj{
		Rect:    geom.NewRect(geom.Pt(0, 0), geom.Pt(0.5, 0.5)),
		MaxArea: 0.01, Beta: 1.5,
		Nbs: [4]core.MobilePtr{core.MobilePtr{Home: 1, Seq: 2}, core.MobilePtr{}, core.MobilePtr{Home: 0, Seq: 9}, core.MobilePtr{}},
		M:   m,
	}
	var buf bytes.Buffer
	if err := o.EncodeTo(&buf); err != nil {
		t.Fatal(err)
	}
	var o2 subdomainObj
	if err := o2.DecodeFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if o2.Rect != o.Rect || o2.MaxArea != o.MaxArea || o2.Beta != o.Beta || o2.Nbs != o.Nbs {
		t.Fatalf("metadata mismatch: %+v", o2)
	}
	if o2.M == nil || o2.M.NumTriangles() != m.NumTriangles() {
		t.Fatal("mesh not restored")
	}
	if err := o2.M.Validate(); err != nil {
		t.Fatal(err)
	}
	// Empty-mesh roundtrip.
	o3 := &subdomainObj{Rect: o.Rect}
	var buf2 bytes.Buffer
	if err := o3.EncodeTo(&buf2); err != nil {
		t.Fatal(err)
	}
	var o4 subdomainObj
	if err := o4.DecodeFrom(&buf2); err != nil {
		t.Fatal(err)
	}
	if o4.M != nil {
		t.Fatal("nil mesh should stay nil")
	}
}

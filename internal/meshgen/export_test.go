package meshgen

import (
	"path/filepath"
	"testing"

	"mrts/internal/meshstore"
)

// exportWriter opens a store writer for one run into a fresh temp dir and
// returns both. The meta mirrors what the run's driver would publish.
func exportWriter(t *testing.T, cfg UPDRConfig, compress bool) (string, *meshstore.Writer) {
	t.Helper()
	dir := t.TempDir()
	w, err := meshstore.NewWriter(meshstore.WriterConfig{
		Dir:    dir,
		Writer: 0,
		Meta: meshstore.Meta{
			Blocks:         cfg.Blocks,
			TargetElements: cfg.TargetElements,
			QualityBound:   cfg.QualityBound,
		},
		Compress: compress,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return dir, w
}

// finishExport finalizes the writer, merges manifests and deep-verifies the
// store, returning the sealed merged manifest.
func finishExport(t *testing.T, dir string, w *meshstore.Writer) *meshstore.Manifest {
	t.Helper()
	if _, err := w.Finalize(); err != nil {
		t.Fatalf("finalize: %v", err)
	}
	man, err := meshstore.MergeManifests(dir)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	rep, err := meshstore.Verify(dir)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if !rep.OK() {
		t.Fatalf("verify problems: %v", rep.Problems)
	}
	return man
}

// TestOUPDRStreamingExport: a bulk-sync run with an export writer attached
// frames every block at its dump point; the merged manifest must be complete
// and carry the exact run-wide MeshHash the run itself reported — the
// offline store is a faithful stand-in for the live cluster.
func TestOUPDRStreamingExport(t *testing.T) {
	cfg := specTestConfig
	dir, w := exportWriter(t, cfg, true)
	cfg.Export = w
	res, err := RunOUPDR(specTestCluster(t, 2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	nb := cfg.Blocks
	if got := w.Blocks(); got != nb*nb {
		t.Fatalf("writer saw %d blocks, want %d", got, nb*nb)
	}
	man := finishExport(t, dir, w)
	if man.Partial {
		t.Fatal("complete export sealed as partial")
	}
	if man.MeshHash != res.MeshHash {
		t.Fatalf("manifest MeshHash %s != run %s", man.MeshHash, res.MeshHash)
	}

	// The store must answer block fetches offline, and the offline deep
	// decode must reproduce each block's canonical digest.
	st, err := meshstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	payload, rec, err := st.Payload(meshstore.BlockKey(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	dump, err := DecodeExportedBlock(payload, nb)
	if err != nil {
		t.Fatal(err)
	}
	if dump.Hash != rec.Hash || dump.Elements != rec.Elements || dump.I != 0 || dump.J != 0 {
		t.Fatalf("offline decode %+v disagrees with manifest record %+v", dump, rec)
	}
}

// TestSUPDRStreamingExport: the speculative run exports at commit points —
// including blocks that rolled back and retried, and blocks whose retry was
// throttled to bulk pacing. Whatever the path to commitment, each block is
// framed exactly once (the manifest's duplicate-key check would reject the
// store otherwise) and the store hash equals the run hash.
func TestSUPDRStreamingExport(t *testing.T) {
	cfg := SUPDRConfig{
		UPDRConfig:     specTestConfig,
		ConflictProb:   0.8,
		Seed:           7,
		ThrottleRate:   0.5,
		ThrottleWindow: 8,
	}
	dir, w := exportWriter(t, cfg.UPDRConfig, true)
	cfg.Export = w
	res, err := RunSUPDR(specTestCluster(t, 2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rollbacks == 0 {
		t.Fatal("prob 0.8 run produced no rollbacks; commit-after-retry path not exercised")
	}
	nb := cfg.Blocks
	if got := w.Blocks(); got != nb*nb {
		t.Fatalf("writer saw %d blocks, want %d (each commit must frame exactly once)", got, nb*nb)
	}
	man := finishExport(t, dir, w)
	if man.MeshHash != res.MeshHash {
		t.Fatalf("manifest MeshHash %s != run %s", man.MeshHash, res.MeshHash)
	}
	if want := specBulkSyncReference(t); man.MeshHash != want.MeshHash {
		t.Fatalf("exported speculative mesh differs from bulk-sync reference")
	}
}

// TestSUPDRExportPartialMidRunSemantics: frames appended before a crash are
// a readable prefix. Simulated by abandoning the writer (Close without
// Finalize — the SIGKILL path) and opening the directory manifest-less.
func TestSUPDRExportPartialMidRunSemantics(t *testing.T) {
	cfg := SUPDRConfig{UPDRConfig: specTestConfig, ConflictProb: 0, Seed: 1}
	dir, w := exportWriter(t, cfg.UPDRConfig, true)
	cfg.Export = w
	if _, err := RunSUPDR(specTestCluster(t, 2), cfg); err != nil {
		t.Fatal(err)
	}
	w.Close() // crash: no manifest written

	if m, _ := filepath.Glob(filepath.Join(dir, "manifest-*.json")); len(m) != 0 {
		t.Fatalf("abandoned writer left manifests: %v", m)
	}
	st, err := meshstore.Open(dir)
	if err != nil {
		t.Fatalf("manifest-less open: %v", err)
	}
	defer st.Close()
	if !st.Partial() {
		t.Fatal("manifest-less store must report itself partial")
	}
	nb := cfg.Blocks
	if got := len(st.Manifest().Records()); got != nb*nb {
		t.Fatalf("recovered %d frames from chunk scan, want %d", got, nb*nb)
	}
	if _, _, err := st.Payload(meshstore.BlockKey(1, 1)); err != nil {
		t.Fatalf("partial store payload: %v", err)
	}
}

// TestSpeculThrottleFallsBack is the satellite regression test for adaptive
// speculation throttling: under a sustained conflict storm with throttling
// enabled, some retries must be demoted to bulk-sync pacing (Throttled > 0),
// and the demotion must change nothing about the mesh — same canonical hash
// as the bulk-sync reference, conforming interfaces, no leaked snapshots.
func TestSpeculThrottleFallsBack(t *testing.T) {
	want := specBulkSyncReference(t)
	cl := specTestCluster(t, 2)
	res, err := RunSUPDR(cl, SUPDRConfig{
		UPDRConfig:     specTestConfig,
		ConflictProb:   1.0, // every announced pair conflicts: window saturates
		Seed:           3,
		ThrottleRate:   0.5,
		ThrottleWindow: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Throttled == 0 {
		t.Fatal("conflict storm with ThrottleRate 0.5 never throttled")
	}
	if res.Rollbacks == 0 {
		t.Fatal("conflict storm produced no rollbacks")
	}
	if res.MeshHash != want.MeshHash {
		t.Fatalf("throttled mesh hash %s != bulk-sync %s", res.MeshHash, want.MeshHash)
	}
	if res.Elements != want.Elements {
		t.Fatalf("throttled run meshed %d elements, bulk-sync %d", res.Elements, want.Elements)
	}
	if !res.Conforming {
		t.Fatal("interfaces no longer conform under throttling")
	}
	for _, rt := range cl.Runtimes() {
		if n := rt.SnapshotCount(); n != 0 {
			t.Errorf("node holds %d unresolved speculation snapshots", n)
		}
		for _, msg := range rt.CheckInvariants(true) {
			t.Errorf("invariant violated: %s", msg)
		}
	}
}

// TestSpeculThrottleDisabledByDefault pins back-compat: ThrottleRate zero
// (the default) must never demote a retry, whatever the conflict rate.
func TestSpeculThrottleDisabledByDefault(t *testing.T) {
	res, err := RunSUPDR(specTestCluster(t, 2), SUPDRConfig{
		UPDRConfig:   specTestConfig,
		ConflictProb: 1.0,
		Seed:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Throttled != 0 {
		t.Fatalf("ThrottleRate 0 demoted %d retries, want none", res.Throttled)
	}
}

// TestSpeculThrottleDeterministic: same seed and throttle config, same mesh —
// the throttle decision rides on the deterministic conflict draw, so a replay
// must reproduce the identical outcome.
func TestSpeculThrottleDeterministic(t *testing.T) {
	run := func() Result {
		res, err := RunSUPDR(specTestCluster(t, 2), SUPDRConfig{
			UPDRConfig:     specTestConfig,
			ConflictProb:   0.9,
			Seed:           11,
			ThrottleRate:   0.4,
			ThrottleWindow: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.MeshHash != b.MeshHash {
		t.Fatal("same seed under throttling produced different meshes")
	}
	if a.Elements != b.Elements {
		t.Fatalf("same seed produced %d vs %d elements", a.Elements, b.Elements)
	}
}

package meshgen

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"mrts/internal/cluster"
	"mrts/internal/core"
	"mrts/internal/geom"
	"mrts/internal/meshstore"
	"mrts/internal/workload"
)

// OUPDR handler IDs.
const (
	hBlockMesh  core.HandlerID = 101
	hBlockIface core.HandlerID = 102
)

// blockObj is the OUPDR mobile object: one block of the uniform
// decomposition, holding its refined mesh in serialized form. It moves
// between memory and disk under the out-of-core layer.
type blockObj struct {
	Rect    geom.Rect
	H, Beta float64
	Right   core.MobilePtr // neighbor across the right edge (or Nil)
	Top     core.MobilePtr // neighbor across the top edge (or Nil)

	MeshData []byte // encoded refined mesh (nil before meshing)
	Elements int32
	Verts    int32

	// IfaceNeeded counts interface messages still expected from the left
	// and bottom neighbors; while positive the block keeps an elevated
	// swapping priority so it is not unloaded right before it is needed
	// (the paper's priority optimization).
	IfaceNeeded int32

	Left    []geom.Point // own interface points on the left edge
	Bottom  []geom.Point // own interface points on the bottom edge
	Pending [][]byte     // interface payloads that arrived before meshing
}

func (o *blockObj) TypeID() uint16 { return typeBlock }

func (o *blockObj) SizeHint() int {
	n := 128 + len(o.MeshData) + 16*(len(o.Left)+len(o.Bottom))
	for _, p := range o.Pending {
		n += len(p)
	}
	return n
}

func (o *blockObj) EncodeTo(w io.Writer) error {
	if err := writeRect(w, o.Rect); err != nil {
		return err
	}
	for _, f := range []float64{o.H, o.Beta} {
		if err := writeF64(w, f); err != nil {
			return err
		}
	}
	for _, p := range []core.MobilePtr{o.Right, o.Top} {
		if err := writePtr(w, p); err != nil {
			return err
		}
	}
	if err := writeBytes(w, o.MeshData); err != nil {
		return err
	}
	for _, v := range []uint32{uint32(o.Elements), uint32(o.Verts), uint32(o.IfaceNeeded)} {
		if err := writeU32(w, v); err != nil {
			return err
		}
	}
	if err := writePoints(w, o.Left); err != nil {
		return err
	}
	if err := writePoints(w, o.Bottom); err != nil {
		return err
	}
	if err := writeU32(w, uint32(len(o.Pending))); err != nil {
		return err
	}
	for _, p := range o.Pending {
		if err := writeBytes(w, p); err != nil {
			return err
		}
	}
	return nil
}

func (o *blockObj) DecodeFrom(r io.Reader) error {
	var err error
	if o.Rect, err = readRect(r); err != nil {
		return err
	}
	if o.H, err = readF64(r); err != nil {
		return err
	}
	if o.Beta, err = readF64(r); err != nil {
		return err
	}
	if o.Right, err = readPtr(r); err != nil {
		return err
	}
	if o.Top, err = readPtr(r); err != nil {
		return err
	}
	if o.MeshData, err = readBytes(r); err != nil {
		return err
	}
	if len(o.MeshData) == 0 {
		o.MeshData = nil
	}
	var vs [3]uint32
	for i := range vs {
		if vs[i], err = readU32(r); err != nil {
			return err
		}
	}
	o.Elements, o.Verts, o.IfaceNeeded = int32(vs[0]), int32(vs[1]), int32(vs[2])
	if o.Left, err = readPoints(r); err != nil {
		return err
	}
	if o.Bottom, err = readPoints(r); err != nil {
		return err
	}
	np, err := readU32(r)
	if err != nil {
		return err
	}
	o.Pending = nil
	for i := uint32(0); i < np; i++ {
		p, err := readBytes(r)
		if err != nil {
			return err
		}
		o.Pending = append(o.Pending, p)
	}
	return nil
}

// oupdrShared carries the run-wide accumulators the handlers report into.
type oupdrShared struct {
	elements atomic.Int64
	verts    atomic.Int64
	mismatch atomic.Int64

	dumpMu sync.Mutex
	dump   []BlockDump // per-block canonical hashes (dump phase)

	// Streaming export (optional): blocks are framed into the store as the
	// dump pass visits them — the bulk-sync method's irrevocable point.
	export *meshstore.Writer
	expMu  sync.Mutex
	expErr error
}

func (sh *oupdrShared) exportFail(err error) {
	sh.expMu.Lock()
	if sh.expErr == nil {
		sh.expErr = err
	}
	sh.expMu.Unlock()
}

// registerOUPDR installs the OUPDR handlers on every node of the cluster.
func registerOUPDR(cl *cluster.Cluster, sh *oupdrShared) {
	for _, rt := range cl.Runtimes() {
		rt.Register(hBlockMesh, func(c *core.Ctx, arg []byte) {
			o := c.Object().(*blockObj)
			oupdrMeshHandler(c, o, sh)
		})
		rt.Register(hBlockIface, func(c *core.Ctx, arg []byte) {
			o := c.Object().(*blockObj)
			oupdrIfaceHandler(c, o, arg, sh)
		})
		rt.Register(hBlockDump, func(c *core.Ctx, arg []byte) {
			if len(arg) < 4 {
				return
			}
			o := c.Object().(*blockObj)
			nb := int(binary.LittleEndian.Uint32(arg))
			i := int(math.Round(o.Rect.Min.X * float64(nb)))
			j := int(math.Round(o.Rect.Min.Y * float64(nb)))
			sh.dumpMu.Lock()
			sh.dump = append(sh.dump, BlockDump{
				I:        i,
				J:        j,
				Elements: o.Elements,
				Hash:     hex.EncodeToString(hashMesh(o.MeshData)),
			})
			sh.dumpMu.Unlock()
			if sh.export != nil {
				if err := exportBlock(sh.export, i, j, o); err != nil {
					sh.exportFail(err)
				}
			}
		})
	}
}

// oupdrMeshHandler refines the block and ships interface point sets to the
// right and top neighbors (structured communication).
func oupdrMeshHandler(c *core.Ctx, o *blockObj, sh *oupdrShared) {
	bm, err := meshBlock(o.Rect, o.H, o.Beta)
	if err != nil {
		return
	}
	var buf bytes.Buffer
	if err := bm.mesh.EncodeTo(&buf); err != nil {
		return
	}
	o.MeshData = buf.Bytes()
	o.Elements = int32(bm.mesh.NumTriangles())
	o.Verts = int32(bm.mesh.NumVertices())
	sh.elements.Add(int64(o.Elements))
	sh.verts.Add(int64(o.Verts))

	hull := bm.hullPoints()
	o.Left = edgePointsOn(hull, o.Rect.Min, geom.Pt(o.Rect.Min.X, o.Rect.Max.Y))
	o.Bottom = edgePointsOn(hull, o.Rect.Min, geom.Pt(o.Rect.Max.X, o.Rect.Min.Y))

	// Exchange: my right edge against the right neighbor's left edge, my
	// top edge against the top neighbor's bottom edge. Prefer the direct
	// in-core call (the paper's shared-memory optimization), falling back
	// to a one-sided message.
	if !o.Right.IsNil() {
		arg := append([]byte{0}, encodePoints(bm.interfacePoints(0))...)
		if !c.CallInline(o.Right, hBlockIface, arg) {
			c.Post(o.Right, hBlockIface, arg)
		}
	}
	if !o.Top.IsNil() {
		arg := append([]byte{1}, encodePoints(bm.interfacePoints(1))...)
		if !c.CallInline(o.Top, hBlockIface, arg) {
			c.Post(o.Top, hBlockIface, arg)
		}
	}
	// Resolve interface payloads that arrived before this block meshed.
	pend := o.Pending
	o.Pending = nil
	for _, p := range pend {
		oupdrIfaceHandler(c, o, p, sh)
	}
	// Until the remaining interface messages arrive, keep this block
	// in-core preferentially (the paper's priority hint).
	if o.IfaceNeeded > 0 {
		c.SetPriority(c.Self, 5)
	}
}

// oupdrIfaceHandler verifies a neighbor's interface points against this
// block's own edge points.
func oupdrIfaceHandler(c *core.Ctx, o *blockObj, arg []byte, sh *oupdrShared) {
	if len(arg) < 1 {
		return
	}
	if o.IfaceNeeded > 0 {
		o.IfaceNeeded--
		if o.IfaceNeeded == 0 && o.MeshData != nil {
			c.SetPriority(c.Self, 0)
		}
	}
	if o.MeshData == nil {
		// Not meshed yet: keep the payload for later.
		o.Pending = append(o.Pending, arg)
		return
	}
	side := arg[0]
	pts, err := decodePoints(arg[1:])
	if err != nil {
		return
	}
	var mine []geom.Point
	if side == 0 {
		mine = o.Left
	} else {
		mine = o.Bottom
	}
	if !samePoints(mine, pts) {
		sh.mismatch.Add(1)
	}
}

// RunOUPDR executes the out-of-core uniform method on an MRTS cluster: one
// mobile object per block, meshing driven by messages, interfaces verified
// by one-sided exchanges, blocks swapped to disk under memory pressure.
func RunOUPDR(cl *cluster.Cluster, cfg UPDRConfig) (Result, error) {
	if err := cfg.defaults(); err != nil {
		return Result{}, err
	}
	start := time.Now()
	sh := &oupdrShared{export: cfg.Export}
	registerOUPDR(cl, sh)

	h := workload.UniformSizeFor(cfg.TargetElements, 1.0)
	nb := cfg.Blocks
	ptrs := make([]core.MobilePtr, nb*nb)
	// Create top-right first so each block's right/top neighbors exist.
	idx := 0
	for j := nb - 1; j >= 0; j-- {
		for i := nb - 1; i >= 0; i-- {
			right, top := core.Nil, core.Nil
			if i+1 < nb {
				right = ptrs[j*nb+i+1]
			}
			if j+1 < nb {
				top = ptrs[(j+1)*nb+i]
			}
			node := idx % cl.Nodes()
			idx++
			expect := int32(0)
			if i > 0 {
				expect++
			}
			if j > 0 {
				expect++
			}
			ptrs[j*nb+i] = cl.RT(node).CreateObject(&blockObj{
				Rect:        blockRect(nb, i, j),
				H:           h,
				Beta:        cfg.QualityBound,
				Right:       right,
				Top:         top,
				IfaceNeeded: expect,
			})
		}
	}
	// Kick off: post the mesh message to every block (the initial messages
	// of the paper's programming model), then hand control to the runtime.
	for _, p := range ptrs {
		cl.RT(int(p.Home)).Post(p, hBlockMesh, nil)
	}
	cl.Wait()

	if n := sh.elements.Load(); n == 0 {
		return Result{}, fmt.Errorf("meshgen: OUPDR produced no elements")
	}
	// Dump phase: collect every block's canonical mesh hash and combine
	// them into the run-wide digest the mesh-equality properties compare.
	nbArg := make([]byte, 4)
	binary.LittleEndian.PutUint32(nbArg, uint32(nb))
	for _, p := range ptrs {
		cl.RT(int(p.Home)).Post(p, hBlockDump, nbArg)
	}
	cl.Wait()
	sh.dumpMu.Lock()
	meshHash := combineMeshHash(sh.dump)
	sh.dumpMu.Unlock()
	if cfg.Export != nil {
		sh.expMu.Lock()
		expErr := sh.expErr
		sh.expMu.Unlock()
		if expErr == nil {
			expErr = cfg.Export.Err()
		}
		if expErr != nil {
			return Result{}, fmt.Errorf("meshgen: export: %w", expErr)
		}
	}
	return Result{
		Method:     "OUPDR",
		MeshHash:   meshHash,
		Elements:   int(sh.elements.Load()),
		Vertices:   int(sh.verts.Load()),
		Subdomains: nb * nb,
		PEs:        cl.PEs(),
		Elapsed:    time.Since(start),
		Report:     cl.Report(),
		Mem:        cl.MemStats(),
		Conforming: sh.mismatch.Load() == 0,
	}, nil
}

package meshgen

import (
	"testing"
	"time"

	"mrts/internal/cluster"
	"mrts/internal/core"
	"mrts/internal/storage"
)

// faultTestCluster builds a swapping 2-node cluster over memory-backed
// stores with the given fault config and retry policy.
func faultTestCluster(t *testing.T, fault *storage.FaultConfig, retry storage.RetryPolicy, onSwap func(int, core.SwapError)) *cluster.Cluster {
	t.Helper()
	cl, err := cluster.New(cluster.Config{
		Nodes:       2,
		MemBudget:   200_000, // tiny: blocks must swap, exercising the fault paths
		Factory:     Factory,
		Fault:       fault,
		Retry:       retry,
		OnSwapError: onSwap,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl
}

// TestOUPDRTransientFaultsProduceIdenticalMesh is the tentpole acceptance
// test: an out-of-core OUPDR run whose every store key fails twice before
// succeeding must complete with exactly the fault-free element count — the
// retry layer absorbs the faults and nothing is lost.
func TestOUPDRTransientFaultsProduceIdenticalMesh(t *testing.T) {
	cfg := UPDRConfig{Blocks: 4, TargetElements: 12000}
	clean := faultTestCluster(t, nil, storage.RetryPolicy{}, nil)
	want, err := RunOUPDR(clean, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want.Mem.Evictions == 0 {
		t.Fatal("fault-free run never swapped; the budget must force eviction")
	}

	cl := faultTestCluster(t,
		&storage.FaultConfig{Seed: 7, FailFirstGets: 2, FailFirstPuts: 2},
		storage.RetryPolicy{MaxAttempts: 5, BaseDelay: 50 * time.Microsecond, MaxDelay: time.Millisecond},
		nil)
	got, err := RunOUPDR(cl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Elements != want.Elements {
		t.Errorf("transient faults changed the mesh: %d vs %d elements", got.Elements, want.Elements)
	}
	if !got.Conforming {
		t.Error("interfaces no longer conform under transient faults")
	}
	s := cl.SwapStats()
	if s.ObjectsLost != 0 || s.LoadFailures != 0 || s.StoreFailures != 0 {
		t.Errorf("transient faults leaked into SwapStats: %+v", s)
	}
	if s.Retries == 0 {
		t.Error("no retries recorded; the fault injection did not engage")
	}
	if m := cl.MemStats(); m.Retries != s.Retries {
		t.Errorf("ooc stats retries %d != swap stats retries %d", m.Retries, s.Retries)
	}
}

// TestOUPDRPermanentFaultsFailLoudly: with every reload failing permanently,
// swapped-out blocks are lost — the run must surface non-zero ObjectsLost
// and SwapError callbacks, and the cluster must still terminate.
func TestOUPDRPermanentFaultsFailLoudly(t *testing.T) {
	done := make(chan struct{}, 1)
	cl := faultTestCluster(t,
		&storage.FaultConfig{Seed: 7, GetFailProb: 1, Permanent: true},
		storage.RetryPolicy{MaxAttempts: 3, BaseDelay: 50 * time.Microsecond},
		func(node int, e core.SwapError) {
			select {
			case done <- struct{}{}:
			default:
			}
		})

	res, err := RunOUPDR(cl, UPDRConfig{Blocks: 4, TargetElements: 12000})
	s := cl.SwapStats()
	if s.ObjectsLost == 0 {
		// Whether the run itself revisits an evicted block depends on
		// scheduling (under -race the interface messages often land before
		// any eviction). Force the issue: reload whatever ended the run out
		// of core — with every Get failing permanently, any swapped-out
		// block must surface as lost.
		forced := false
		for _, rt := range cl.Runtimes() {
			for _, p := range rt.LocalObjects() {
				if !rt.InCore(p) {
					rt.Prefetch(p)
					forced = true
				}
			}
		}
		if !forced {
			t.Fatal("no block was ever evicted; the budget must force swapping")
		}
		cl.Wait()
		s = cl.SwapStats()
	}
	if s.ObjectsLost == 0 || s.LoadFailures == 0 {
		t.Fatalf("permanent faults were silent: %+v (err=%v)", s, err)
	}
	select {
	case <-done:
	default:
		t.Error("OnSwapError never fired for a permanent fault")
	}
	// The run either reports fewer elements than a clean run would, or an
	// explicit error — never a silent full result. (All blocks that meshed
	// before eviction still count; the lost ones are the gap.)
	if err == nil && res.Elements <= 0 {
		t.Errorf("run returned no error and no elements: %+v", res)
	}
	var errs []core.SwapError
	for _, rt := range cl.Runtimes() {
		errs = append(errs, rt.SwapErrors()...)
	}
	if len(errs) == 0 {
		t.Error("no SwapErrors recorded on any node")
	}
	for _, e := range errs {
		if e.Op != core.SwapLoad || !e.Lost {
			t.Errorf("unexpected swap error shape: %+v", e)
		}
	}
}

package meshgen

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"mrts/internal/bufpool"
	"mrts/internal/cluster"
	"mrts/internal/core"
	"mrts/internal/mesh"
	"mrts/internal/meshstore"
	"mrts/internal/storage"
	"mrts/internal/workload"
)

// This file is the SPMD driver for a true multi-process OUPDR run: every
// worker process executes the same code against its own core.Runtime, and
// the only thing the processes share is the deterministic placement function
// below. No process ever tells another which MobilePtr it minted — each one
// recomputes the full pointer table from the block grid, the consistent-hash
// directory, and the runtime's sequential Seq assignment, and CreateBlocks
// verifies the prediction against what CreateObject actually returned.

// hBlockDump asks a block to report (i, j, elements, mesh hash) for the
// cross-run equality check.
const hBlockDump core.HandlerID = 103

// hBlockExport asks a block to frame its full encoded state into the
// node's meshstore chunk writer.
const hBlockExport core.HandlerID = 104

// DistConfig parameterizes one node's share of a distributed OUPDR run. All
// processes of a run must use identical Blocks/TargetElements/QualityBound/
// Nodes/Phases/VNodes; Node is the process's own ID.
type DistConfig struct {
	// Blocks is the decomposition grid dimension (Blocks×Blocks blocks).
	Blocks int
	// TargetElements is the approximate total element count.
	TargetElements int
	// QualityBound is the radius-edge bound (0 = default √2).
	QualityBound float64
	// Nodes is the cluster size; Node is this process (0..Nodes-1).
	Nodes, Node int
	// Phases splits the kick-off posts into Phases barrier-separated rounds
	// (block idx k is posted in phase k%Phases). Multi-phase runs give the
	// launcher quiescent boundaries to checkpoint — and kill — workers at.
	Phases int
	// VNodes overrides the directory's virtual node count (0 = default).
	VNodes int
}

func (c *DistConfig) defaults() error {
	if c.Blocks <= 0 {
		c.Blocks = 4
	}
	if c.TargetElements <= 0 {
		return fmt.Errorf("meshgen: TargetElements must be positive")
	}
	if c.Nodes <= 0 {
		return fmt.Errorf("meshgen: Nodes must be positive")
	}
	if c.Node < 0 || c.Node >= c.Nodes {
		return fmt.Errorf("meshgen: Node %d out of range [0,%d)", c.Node, c.Nodes)
	}
	if c.Phases <= 0 {
		c.Phases = 1
	}
	return nil
}

// BlockDump is one block's contribution to the mesh-equality check.
type BlockDump struct {
	I, J     int
	Elements int32
	Hash     string // hex sha256 of the encoded refined mesh
}

// String renders the canonical dump line.
func (b BlockDump) String() string {
	return fmt.Sprintf("%d %d %d %s", b.J, b.I, b.Elements, b.Hash)
}

// Placement is the deterministic block→node mapping every process of a run
// computes identically: the consistent-hash directory over the node set plus
// the predicted MobilePtr table derived from it. It exists as a standalone
// value so a worker can build it before its runtime — the directory doubles
// as the runtime's placement-aware locator (cluster.NewPlacedLocatorKeyed
// with Placement.Key), and since blocks are created at their ring owners,
// that locator resolves every first hop to the correct node with zero
// forwarding.
type Placement struct {
	// Dir is the placement ring (identical in every process of the run).
	Dir *cluster.Directory
	// Ptrs is the global pointer table, indexed j*Blocks+i.
	Ptrs []core.MobilePtr
	// Owners is the owner per block, same indexing.
	Owners []core.NodeID
	// Order is the canonical creation order (indexes into Ptrs).
	Order []int

	keys map[core.MobilePtr]string // ptr -> the "block-i-j" key that placed it
}

// Key is the placement-key function for the run's locator
// (cluster.NewPlacedLocatorKeyed): blocks were placed on the ring by their
// "block-i-j" names, so first-hop resolution must ask the ring by those same
// names — the canonical PtrKey of a block pointer hashes elsewhere entirely.
// Pointers outside the block table (none exist in this workload) fall back
// to the canonical key.
func (pl *Placement) Key(ptr core.MobilePtr) string {
	if k, ok := pl.keys[ptr]; ok {
		return k
	}
	return cluster.PtrKey(ptr)
}

// NewPlacement computes the shared placement table for a run configuration.
// It predicts every block's MobilePtr: owner from the directory, Seq from
// the owner's creation order (CreateObject assigns 1, 2, ... on a fresh
// runtime). The canonical order is top-right first — j then i descending —
// so each block's right/top neighbors are already placed when it is.
func NewPlacement(cfg DistConfig) (*Placement, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	ids := make([]core.NodeID, cfg.Nodes)
	for i := range ids {
		ids[i] = core.NodeID(i)
	}
	pl := &Placement{Dir: cluster.NewDirectory(ids, cfg.VNodes)}

	nb := cfg.Blocks
	pl.Ptrs = make([]core.MobilePtr, nb*nb)
	pl.Owners = make([]core.NodeID, nb*nb)
	pl.Order = make([]int, 0, nb*nb)
	pl.keys = make(map[core.MobilePtr]string, nb*nb)
	seq := make([]uint32, cfg.Nodes)
	for j := nb - 1; j >= 0; j-- {
		for i := nb - 1; i >= 0; i-- {
			idx := j*nb + i
			key := meshstore.BlockKey(i, j)
			owner, _ := pl.Dir.Owner(key)
			seq[owner]++
			pl.Ptrs[idx] = core.MobilePtr{Home: owner, Seq: seq[owner]}
			pl.Owners[idx] = owner
			pl.Order = append(pl.Order, idx)
			pl.keys[pl.Ptrs[idx]] = key
		}
	}
	return pl, nil
}

// Dist drives one node of a distributed OUPDR run.
type Dist struct {
	rt  *core.Runtime
	cfg DistConfig
	sh  *oupdrShared

	ptrs   []core.MobilePtr // global pointer table, indexed j*Blocks+i
	owners []core.NodeID    // owner per block, same indexing
	order  []int            // canonical creation order (indexes into ptrs)

	mu     sync.Mutex
	dump   []BlockDump
	expW   *meshstore.Writer
	expErr error
}

// NewDist computes the placement table and registers the OUPDR handlers on
// rt. It does not create objects: call CreateBlocks on a fresh start, or
// Restore when relaunching from a checkpoint.
func NewDist(rt *core.Runtime, cfg DistConfig) (*Dist, error) {
	pl, err := NewPlacement(cfg)
	if err != nil {
		return nil, err
	}
	return NewDistFrom(rt, cfg, pl)
}

// NewDistFrom registers the OUPDR handlers on rt against a placement the
// caller already computed — the path workers take when the placement also
// feeds the runtime's locator, so both views come from one directory.
func NewDistFrom(rt *core.Runtime, cfg DistConfig, pl *Placement) (*Dist, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	nb := cfg.Blocks
	if len(pl.Ptrs) != nb*nb {
		return nil, fmt.Errorf("meshgen: placement is for %d blocks, config wants %d", len(pl.Ptrs), nb*nb)
	}
	d := &Dist{rt: rt, cfg: cfg, sh: &oupdrShared{},
		ptrs: pl.Ptrs, owners: pl.Owners, order: pl.Order}

	rt.Register(hBlockMesh, func(c *core.Ctx, arg []byte) {
		oupdrMeshHandler(c, c.Object().(*blockObj), d.sh)
	})
	rt.Register(hBlockIface, func(c *core.Ctx, arg []byte) {
		oupdrIfaceHandler(c, c.Object().(*blockObj), arg, d.sh)
	})
	rt.Register(hBlockDump, func(c *core.Ctx, arg []byte) {
		o := c.Object().(*blockObj)
		// Recover (i, j) from the block rectangle: Min = (i, j)/Blocks.
		i := int(math.Round(o.Rect.Min.X * float64(nb)))
		j := int(math.Round(o.Rect.Min.Y * float64(nb)))
		rec := BlockDump{I: i, J: j, Elements: o.Elements,
			Hash: hex.EncodeToString(hashMesh(o.MeshData))}
		d.mu.Lock()
		d.dump = append(d.dump, rec)
		d.mu.Unlock()
	})
	rt.Register(hBlockExport, func(c *core.Ctx, arg []byte) {
		o := c.Object().(*blockObj)
		i := int(math.Round(o.Rect.Min.X * float64(nb)))
		j := int(math.Round(o.Rect.Min.Y * float64(nb)))
		d.mu.Lock()
		w := d.expW
		d.mu.Unlock()
		if w == nil {
			return
		}
		if err := exportBlock(w, i, j, o); err != nil {
			d.mu.Lock()
			if d.expErr == nil {
				d.expErr = err
			}
			d.mu.Unlock()
		}
	})
	return d, nil
}

// exportBlock frames one block into a store chunk: the canonical mesh
// digest for offline verification, and the block's full encoded state as
// the payload a rank-independent restore re-creates it from.
func exportBlock(w *meshstore.Writer, i, j int, o *blockObj) error {
	bw := bufpool.GetWriter(o.SizeHint())
	defer bufpool.PutWriter(bw)
	if err := o.EncodeTo(bw); err != nil {
		return err
	}
	return w.Append(meshstore.BlockKey(i, j), i, j, o.Elements,
		hex.EncodeToString(hashMesh(o.MeshData)), bw.Bytes())
}

// hashMesh digests a block's refined mesh by geometry, not by encoding:
// mesh.EncodeTo's byte output depends on internal ID assignment order, which
// varies with scheduling, so two geometrically identical meshes can encode
// differently. The canonical form is the multiset of live non-super triangles,
// each as its three vertex coordinates sorted, the list itself sorted.
func hashMesh(data []byte) []byte {
	m := mesh.New()
	if err := m.DecodeFrom(bytes.NewReader(data)); err != nil {
		// An undecodable mesh hashes to a tagged digest of the raw bytes so
		// the equality check fails loudly rather than panicking mid-handler.
		h := sha256.Sum256(append([]byte("undecodable:"), data...))
		return h[:]
	}
	type tri [6]float64
	var tris []tri
	m.ForEachTri(func(t mesh.TriID, _ mesh.Tri) {
		if m.HasSuperVertex(t) {
			return
		}
		g := m.Triangle(t)
		pts := [3][2]float64{{g.A.X, g.A.Y}, {g.B.X, g.B.Y}, {g.C.X, g.C.Y}}
		sort.Slice(pts[:], func(a, b int) bool {
			if pts[a][0] != pts[b][0] {
				return pts[a][0] < pts[b][0]
			}
			return pts[a][1] < pts[b][1]
		})
		tris = append(tris, tri{pts[0][0], pts[0][1], pts[1][0], pts[1][1], pts[2][0], pts[2][1]})
	})
	sort.Slice(tris, func(a, b int) bool {
		for k := 0; k < 6; k++ {
			if tris[a][k] != tris[b][k] {
				return tris[a][k] < tris[b][k]
			}
		}
		return false
	})
	h := sha256.New()
	var b [8]byte
	for _, tr := range tris {
		for _, v := range tr {
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
			h.Write(b[:])
		}
	}
	return h.Sum(nil)
}

// CreateBlocks creates this node's blocks in the canonical order and
// verifies each minted pointer against the prediction — the property the
// whole cross-process addressing scheme rests on.
func (d *Dist) CreateBlocks() error {
	nb := d.cfg.Blocks
	h := workload.UniformSizeFor(d.cfg.TargetElements, 1.0)
	beta := d.cfg.QualityBound
	for _, idx := range d.order {
		if d.owners[idx] != core.NodeID(d.cfg.Node) {
			continue
		}
		i, j := idx%nb, idx/nb
		right, top := core.Nil, core.Nil
		if i+1 < nb {
			right = d.ptrs[j*nb+i+1]
		}
		if j+1 < nb {
			top = d.ptrs[(j+1)*nb+i]
		}
		expect := int32(0)
		if i > 0 {
			expect++
		}
		if j > 0 {
			expect++
		}
		got := d.rt.CreateObject(&blockObj{
			Rect:        blockRect(nb, i, j),
			H:           h,
			Beta:        beta,
			Right:       right,
			Top:         top,
			IfaceNeeded: expect,
		})
		if got != d.ptrs[idx] {
			return fmt.Errorf("meshgen: block (%d,%d) minted %v, placement predicted %v",
				i, j, got, d.ptrs[idx])
		}
	}
	return nil
}

// NumLocalBlocks returns how many blocks the placement assigns this node.
func (d *Dist) NumLocalBlocks() int {
	n := 0
	for _, o := range d.owners {
		if o == core.NodeID(d.cfg.Node) {
			n++
		}
	}
	return n
}

// PostPhase posts the mesh kick-off to this node's blocks of phase k (block
// order index k mod Phases). Every process must post the same phase, then
// call WaitPhase — the phases are global barriers.
func (d *Dist) PostPhase(k int) {
	for ord, idx := range d.order {
		if ord%d.cfg.Phases != k || d.owners[idx] != core.NodeID(d.cfg.Node) {
			continue
		}
		d.rt.Post(d.ptrs[idx], hBlockMesh, nil)
	}
}

// WaitPhase runs the distributed termination protocol for one phase barrier.
func (d *Dist) WaitPhase() { d.rt.WaitTermination(d.cfg.Nodes) }

// Dump posts the dump request to every local block, waits for global
// termination (every process must call Dump together), and returns this
// node's block reports sorted by (j, i).
func (d *Dist) Dump() []BlockDump {
	d.mu.Lock()
	d.dump = nil
	d.mu.Unlock()
	for _, ptr := range d.rt.LocalObjects() {
		d.rt.Post(ptr, hBlockDump, nil)
	}
	d.rt.WaitTermination(d.cfg.Nodes)
	d.mu.Lock()
	out := append([]BlockDump(nil), d.dump...)
	d.mu.Unlock()
	sort.Slice(out, func(a, b int) bool {
		if out[a].J != out[b].J {
			return out[a].J < out[b].J
		}
		return out[a].I < out[b].I
	})
	return out
}

// Elements returns the elements meshed on this node so far.
func (d *Dist) Elements() int64 { return d.sh.elements.Load() }

// Mismatches returns the interface conformity violations observed locally.
func (d *Dist) Mismatches() int64 { return d.sh.mismatch.Load() }

// Checkpoint writes the node's state into st at a phase barrier, absorbing
// the short window where background evictions still hold objects.
func (d *Dist) Checkpoint(st storage.Store, prefix string) error {
	var err error
	for attempt := 0; attempt < 1000; attempt++ {
		err = d.rt.Checkpoint(st, prefix)
		if !errors.Is(err, core.ErrBusy) {
			return err
		}
		time.Sleep(200 * time.Microsecond)
	}
	return err
}

// Restore rebuilds the node from a checkpoint written by Checkpoint; the
// runtime must be fresh (NewDist registered handlers, no objects created).
func (d *Dist) Restore(st storage.Store, prefix string) error {
	return d.rt.Restore(st, prefix)
}

// StoreMeta is the manifest meta for this run's generation parameters —
// what a rank-independent restore needs, and nothing about the node count.
func (d *Dist) StoreMeta() meshstore.Meta {
	return meshstore.Meta{
		Blocks:         d.cfg.Blocks,
		TargetElements: d.cfg.TargetElements,
		QualityBound:   d.cfg.QualityBound,
	}
}

// Export frames every local block into w and waits for global termination
// (every process of the run must call Export together, like Dump). The
// writer is left open; callers Finalize and merge manifests afterwards.
func (d *Dist) Export(w *meshstore.Writer) error {
	d.mu.Lock()
	d.expW, d.expErr = w, nil
	d.mu.Unlock()
	for _, ptr := range d.rt.LocalObjects() {
		d.rt.Post(ptr, hBlockExport, nil)
	}
	d.rt.WaitTermination(d.cfg.Nodes)
	d.mu.Lock()
	err := d.expErr
	d.expW = nil
	d.mu.Unlock()
	if err == nil {
		err = w.Err()
	}
	return err
}

// RestoreFromStore rebuilds this node's share of a mesh from a store,
// independent of how many nodes wrote it. Each locally-owned block is
// fetched by its grid key — which chunk holds it is irrelevant — decoded,
// and re-created in the canonical order so the minted pointer matches THIS
// run's placement prediction. The stored neighbor pointers belonged to the
// writing run's placement and are rewritten to the new table; that rewrite
// is the entire rank-independence rule. The runtime must be fresh.
func (d *Dist) RestoreFromStore(st *meshstore.Store) error {
	nb := d.cfg.Blocks
	for _, idx := range d.order {
		if d.owners[idx] != core.NodeID(d.cfg.Node) {
			continue
		}
		i, j := idx%nb, idx/nb
		payload, rec, err := st.Payload(meshstore.BlockKey(i, j))
		if err != nil {
			return fmt.Errorf("meshgen: restore block (%d,%d): %w", i, j, err)
		}
		o := &blockObj{}
		if err := o.DecodeFrom(bytes.NewReader(payload)); err != nil {
			return fmt.Errorf("meshgen: restore block (%d,%d): decode: %w", i, j, err)
		}
		if o.Elements != rec.Elements {
			return fmt.Errorf("meshgen: restore block (%d,%d): payload has %d elements, index says %d",
				i, j, o.Elements, rec.Elements)
		}
		o.Right, o.Top = core.Nil, core.Nil
		if i+1 < nb {
			o.Right = d.ptrs[j*nb+i+1]
		}
		if j+1 < nb {
			o.Top = d.ptrs[(j+1)*nb+i]
		}
		got := d.rt.CreateObject(o)
		if got != d.ptrs[idx] {
			return fmt.Errorf("meshgen: restored block (%d,%d) minted %v, placement predicted %v",
				i, j, got, d.ptrs[idx])
		}
		meshstore.EmitRestore(d.rt.Tracer(), i, j, len(payload))
	}
	return nil
}

// DecodeExportedBlock decodes a stored block payload offline and
// recomputes its canonical digest — the deep half of `meshctl verify`,
// needing no cluster.
func DecodeExportedBlock(payload []byte, blocks int) (BlockDump, error) {
	o := &blockObj{}
	if err := o.DecodeFrom(bytes.NewReader(payload)); err != nil {
		return BlockDump{}, err
	}
	i := int(math.Round(o.Rect.Min.X * float64(blocks)))
	j := int(math.Round(o.Rect.Min.Y * float64(blocks)))
	return BlockDump{I: i, J: j, Elements: o.Elements,
		Hash: hex.EncodeToString(hashMesh(o.MeshData))}, nil
}

// MeshHashOf folds block dumps into the run-wide canonical MeshHash using
// the meshstore combined-digest rule.
func MeshHashOf(dump []BlockDump) string { return combineMeshHash(dump) }

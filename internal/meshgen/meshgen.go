// Package meshgen implements the three parallel unstructured mesh
// generation (PUMG) methods the paper uses to evaluate the MRTS, each in two
// builds:
//
//   - UPDR / OUPDR: uniform parallel Delaunay refinement over a block
//     decomposition with buffer-zone interfaces — structured communication
//     with global synchronization;
//   - NUPDR / ONUPDR: non-uniform (graded) refinement over an adaptive
//     quad-tree with a master refinement queue and buffer collection —
//     multi-threaded, locally synchronized;
//   - PCDM / OPCDM: constrained Delaunay meshing over a domain
//     decomposition with asynchronous small "split" messages — fully
//     unstructured communication.
//
// The plain names are the traditional in-core parallel builds (goroutines +
// channels standing in for MPI ranks); the O-prefixed builds run on the MRTS
// (package core) with the dataset decomposed into mobile objects, and can
// execute problems larger than the per-node memory budget by swapping
// subdomains to the storage layer.
package meshgen

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"mrts/internal/geom"
	"mrts/internal/ooc"
	"mrts/internal/trace"
)

// Result summarizes one mesh generation run.
type Result struct {
	Method     string
	Elements   int
	Vertices   int
	Subdomains int
	PEs        int
	Elapsed    time.Duration
	Report     trace.Report // comp/comm/disk breakdown (OOC builds)
	Mem        ooc.Stats    // OOC layer statistics (OOC builds)
	Conforming bool         // interface conformity verified

	// MeshHash is the canonical digest of the whole refined mesh (per-block
	// sorted-triangle hashes combined in (J,I) order); set by the runs that
	// execute a dump phase (RunOUPDR, RunSUPDR). Equal hashes mean
	// byte-identical meshes.
	MeshHash string
	// Speculation accounting (S-UPDR only; zero elsewhere).
	Conflicts int64 // conflict detections (one per conflicting announce)
	Rollbacks int64 // speculative refinements rolled back and retried
	Throttled int64 // retries demoted to bulk-sync pacing by throttling
}

// Speed returns the paper's per-PE performance metric S/(T·N).
func (r Result) Speed() float64 { return trace.Speed(r.Elements, r.Elapsed, r.PEs) }

// String implements fmt.Stringer.
func (r Result) String() string {
	return fmt.Sprintf("%s: %d elements, %d subdomains, %d PEs, %v (speed %.0f elem/s/PE)",
		r.Method, r.Elements, r.Subdomains, r.PEs, r.Elapsed.Round(time.Millisecond), r.Speed())
}

// encodePoints serializes a point slice for message payloads.
func encodePoints(pts []geom.Point) []byte {
	b := make([]byte, 4+16*len(pts))
	binary.LittleEndian.PutUint32(b[0:4], uint32(len(pts)))
	off := 4
	for _, p := range pts {
		binary.LittleEndian.PutUint64(b[off:off+8], math.Float64bits(p.X))
		binary.LittleEndian.PutUint64(b[off+8:off+16], math.Float64bits(p.Y))
		off += 16
	}
	return b
}

func decodePoints(b []byte) ([]geom.Point, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("meshgen: short point payload")
	}
	n := int(binary.LittleEndian.Uint32(b[0:4]))
	if len(b) < 4+16*n {
		return nil, fmt.Errorf("meshgen: truncated point payload")
	}
	pts := make([]geom.Point, n)
	off := 4
	for i := range pts {
		pts[i].X = math.Float64frombits(binary.LittleEndian.Uint64(b[off : off+8]))
		pts[i].Y = math.Float64frombits(binary.LittleEndian.Uint64(b[off+8 : off+16]))
		off += 16
	}
	return pts, nil
}

// lexLess orders points lexicographically; it fixes the canonical direction
// of an edge for bit-exact interpolation.
func lexLess(a, b geom.Point) bool {
	return a.X < b.X || (a.X == b.X && a.Y < b.Y)
}

// edgeLerp returns point k of n+1 evenly spaced points on segment (a, b),
// computed in the canonical (lexicographic) direction so that two subdomains
// traversing the shared edge in opposite directions produce bit-identical
// coordinates.
func edgeLerp(a, b geom.Point, k, n int) geom.Point {
	if lexLess(b, a) {
		a, b = b, a
		k = n - k
	}
	if k <= 0 {
		return a
	}
	if k >= n {
		return b
	}
	t := float64(k) / float64(n)
	return geom.Pt(a.X+(b.X-a.X)*t, a.Y+(b.Y-a.Y)*t)
}

// boundaryPoints places points along the rectangle boundary of r with
// spacing at most h, deterministically from absolute coordinates — two
// subdomains sharing an edge therefore place identical points on it, which
// is what makes independently meshed neighbors conform ("the buffer zone is
// designed to not require any further refinement").
func boundaryPoints(r geom.Rect, h float64) []geom.Point {
	var pts []geom.Point
	edge := func(a, b geom.Point) {
		n := int(math.Ceil(a.Dist(b)/h + 1e-9))
		if n < 1 {
			n = 1
		}
		for i := 0; i < n; i++ {
			pts = append(pts, edgeLerp(a, b, i, n))
		}
	}
	c0 := r.Min
	c1 := geom.Pt(r.Max.X, r.Min.Y)
	c2 := r.Max
	c3 := geom.Pt(r.Min.X, r.Max.Y)
	edge(c0, c1)
	edge(c1, c2)
	edge(c2, c3)
	edge(c3, c0)
	return pts
}

// edgePointsOn returns the subset of pts lying on the segment from a to b
// (inclusive), sorted along the segment. Used by interface conformity
// checks.
func edgePointsOn(pts []geom.Point, a, b geom.Point) []geom.Point {
	var out []geom.Point
	for _, p := range pts {
		if geom.OnSegment(a, b, p) {
			out = append(out, p)
		}
	}
	// Sort by parameter along the segment.
	d := b.Sub(a)
	den := d.Dot(d)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			ti := out[j].Sub(a).Dot(d) / den
			tj := out[j-1].Sub(a).Dot(d) / den
			if ti < tj {
				out[j], out[j-1] = out[j-1], out[j]
			} else {
				break
			}
		}
	}
	return out
}

// samePoints reports whether two point sequences are identical.
func samePoints(a, b []geom.Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Eq(b[i]) {
			return false
		}
	}
	return true
}

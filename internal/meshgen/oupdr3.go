package meshgen

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"sync/atomic"
	"time"

	"mrts/internal/cluster"
	"mrts/internal/core"
	"mrts/internal/delaunay3"
	"mrts/internal/geom3"
)

// This file is the tetrahedral (3-D) out-of-core block method: the unit cube
// decomposed into sub-cube mobile objects, each holding its own tetrahedral
// mesh, generated and swapped under the MRTS exactly like the 2-D OUPDR
// blocks. The paper generates both triangular and tetrahedral meshes; this
// build demonstrates that the runtime's code paths are dimension-agnostic.
//
// Scope note: the 3-D kernel has no constrained facets, so neighboring
// blocks do not share identical interface triangulations (3-D boundary
// recovery is out of scope — see internal/mesh3); the 2-D methods carry the
// conformity results.

// hBlock3Mesh is the OUPDR-3D mesh handler ID.
const hBlock3Mesh core.HandlerID = 401

// tetsPerUnitVolume calibrates edge length to element count:
// tets ≈ k · volume / h³.
const tetsPerUnitVolume = 180.0

// block3Obj is one sub-cube with its tetrahedral mesh.
type block3Obj struct {
	Box      geom3.Box
	H        float64
	MeshData []byte
	Elements int32
	Verts    int32
}

func (o *block3Obj) TypeID() uint16 { return typeBlock3 }

func (o *block3Obj) SizeHint() int { return 96 + len(o.MeshData) }

func (o *block3Obj) EncodeTo(w io.Writer) error {
	for _, f := range []float64{
		o.Box.Min.X, o.Box.Min.Y, o.Box.Min.Z,
		o.Box.Max.X, o.Box.Max.Y, o.Box.Max.Z, o.H,
	} {
		if err := writeF64(w, f); err != nil {
			return err
		}
	}
	for _, v := range []uint32{uint32(o.Elements), uint32(o.Verts)} {
		if err := writeU32(w, v); err != nil {
			return err
		}
	}
	return writeBytes(w, o.MeshData)
}

func (o *block3Obj) DecodeFrom(r io.Reader) error {
	fs := make([]float64, 7)
	var err error
	for i := range fs {
		if fs[i], err = readF64(r); err != nil {
			return err
		}
	}
	o.Box = geom3.Box{
		Min: geom3.Pt(fs[0], fs[1], fs[2]),
		Max: geom3.Pt(fs[3], fs[4], fs[5]),
	}
	o.H = fs[6]
	var vs [2]uint32
	for i := range vs {
		if vs[i], err = readU32(r); err != nil {
			return err
		}
	}
	o.Elements, o.Verts = int32(vs[0]), int32(vs[1])
	if o.MeshData, err = readBytes(r); err != nil {
		return err
	}
	if len(o.MeshData) == 0 {
		o.MeshData = nil
	}
	return nil
}

// OUPDR3Config configures the tetrahedral block run over the unit cube.
type OUPDR3Config struct {
	// Blocks is the decomposition per axis (Blocks³ sub-cubes).
	Blocks int
	// TargetElements is the approximate total tetrahedron count.
	TargetElements int
}

func (c *OUPDR3Config) defaults() error {
	if c.Blocks <= 0 {
		c.Blocks = 2
	}
	if c.TargetElements <= 0 {
		return fmt.Errorf("meshgen: TargetElements must be positive")
	}
	return nil
}

type oupdr3Shared struct {
	elements atomic.Int64
	verts    atomic.Int64
	failures atomic.Int64
}

func registerOUPDR3(cl *cluster.Cluster, sh *oupdr3Shared) {
	for _, rt := range cl.Runtimes() {
		rt.Register(hBlock3Mesh, func(c *core.Ctx, arg []byte) {
			o := c.Object().(*block3Obj)
			m, err := delaunay3.NewBoxMesh(o.Box)
			if err != nil {
				sh.failures.Add(1)
				return
			}
			if _, err := delaunay3.Refine(m, o.Box, delaunay3.Options{
				Size: func(geom3.Point) float64 { return o.H },
			}); err != nil {
				sh.failures.Add(1)
				return
			}
			var buf bytes.Buffer
			if err := m.EncodeTo(&buf); err != nil {
				sh.failures.Add(1)
				return
			}
			o.MeshData = buf.Bytes()
			o.Elements = int32(m.NumInteriorTets())
			o.Verts = int32(m.NumVertices())
			sh.elements.Add(int64(o.Elements))
			sh.verts.Add(int64(o.Verts))
		})
	}
}

// RunOUPDR3 executes the tetrahedral block method on an MRTS cluster.
func RunOUPDR3(cl *cluster.Cluster, cfg OUPDR3Config) (Result, error) {
	if err := cfg.defaults(); err != nil {
		return Result{}, err
	}
	start := time.Now()
	sh := &oupdr3Shared{}
	registerOUPDR3(cl, sh)

	nb := cfg.Blocks
	h := math.Cbrt(tetsPerUnitVolume / float64(cfg.TargetElements))
	w := 1.0 / float64(nb)
	var ptrs []core.MobilePtr
	idx := 0
	for i := 0; i < nb; i++ {
		for j := 0; j < nb; j++ {
			for k := 0; k < nb; k++ {
				box := geom3.NewBox(
					geom3.Pt(float64(i)*w, float64(j)*w, float64(k)*w),
					geom3.Pt(float64(i+1)*w, float64(j+1)*w, float64(k+1)*w),
				)
				node := idx % cl.Nodes()
				idx++
				ptrs = append(ptrs, cl.RT(node).CreateObject(&block3Obj{Box: box, H: h}))
			}
		}
	}
	for _, p := range ptrs {
		cl.RT(int(p.Home)).Post(p, hBlock3Mesh, nil)
	}
	cl.Wait()

	if sh.failures.Load() > 0 {
		return Result{}, fmt.Errorf("meshgen: %d blocks failed to mesh", sh.failures.Load())
	}
	return Result{
		Method:     "OUPDR3",
		Elements:   int(sh.elements.Load()),
		Vertices:   int(sh.verts.Load()),
		Subdomains: nb * nb * nb,
		PEs:        cl.PEs(),
		Elapsed:    time.Since(start),
		Report:     cl.Report(),
		Mem:        cl.MemStats(),
		Conforming: false, // 3-D interfaces are not constrained (see file doc)
	}, nil
}

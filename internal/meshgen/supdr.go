package meshgen

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"mrts/internal/cluster"
	"mrts/internal/core"
	"mrts/internal/geom"
	"mrts/internal/meshstore"
	"mrts/internal/obs"
	"mrts/internal/workload"
)

// S-UPDR: speculative uniform parallel Delaunay refinement.
//
// OUPDR is bulk-synchronous in spirit: a block refines, then exchanges
// interface points, and conformity is only checked once both sides have
// meshed. S-UPDR drops the implicit phase barrier entirely — every block
// refines optimistically the moment it is kicked, stamps the speculative
// cavity update with an epoch, and announces it to all four neighbors.
// Whether two neighboring same-epoch speculations conflict is decided by a
// deterministic draw both endpoints compute identically (conflictDraw), so
// the protocol needs no negotiation: on a conflict the lower block ID wins,
// the loser rolls back to its pre-refinement snapshot (the runtime's
// object-granular SnapshotObject/RollbackObject) and retries at the next
// epoch. A cavity that already committed can no longer move, so a committed
// block wins every conflict regardless of priority — which also guarantees
// progress: the lowest-ID still-speculative block only ever loses to a
// neighbor that has finished.
//
// The full message protocol, per block:
//
//	kick(e)      — snapshot, announce(e) to every neighbor, refine; a
//	               not-yet-speculative neighbor acks clean right away, so
//	               the in-flight window is the block's own refinement time.
//	               On the first epoch the freshly meshed edge points ship to
//	               the right/top neighbors immediately — the conformity
//	               exchange is speculative too (a retry reproduces the
//	               identical interface, so points from a doomed speculation
//	               are still the committed interface), and at that moment
//	               the receivers are usually unrefined, tiny and in-core
//	announce(e)  — receiver evaluates the conflict draw iff it is itself
//	               speculative or committed at epoch e; replies exactly one
//	               ack(e, verdict). A detected conflict additionally posts
//	               the lose directive to the loser through a conflict
//	               multicast (the loser may be mid-migration or swapped out;
//	               the multicast collection handles both).
//	ack(e, v)    — announcer decrements its ack count; a "you lose" verdict
//	               blocks commit (LosePending) even if every other ack is
//	               clean, closing the commit-before-directive race.
//	lose(e)      — rollback + retry at epoch e+1; stale epochs make the
//	               directive idempotent (the symmetric detection on both
//	               endpoints may issue it twice).
//	commit       — totals are added and the block's canonical mesh digest
//	               is folded into the run digest (no separate dump phase).
//
// Because meshBlock is a pure function of (rect, h, beta), a retry after
// rollback reproduces the identical mesh — the final mesh is byte-identical
// to bulk-sync OUPDR's at any conflict probability, which is exactly what
// the mesh-equality property tests assert via Result.MeshHash.

// S-UPDR handler IDs.
const (
	hSpecMesh     core.HandlerID = 110 // kick/retry a speculative refinement
	hSpecAnnounce core.HandlerID = 111 // neighbor announces its speculation
	hSpecAck      core.HandlerID = 112 // announce reply, carries the verdict
	hSpecLose     core.HandlerID = 113 // conflict-loser directive (multicast)
	hSpecIface    core.HandlerID = 114 // committed interface points
)

// Speculation phases of a block.
const (
	specIdle      int32 = 0 // not yet refined (or rolled back, awaiting retry)
	specInFlight  int32 = 1 // refined speculatively, awaiting acks
	specCommitted int32 = 2 // committed; the cavity can no longer move
)

// Ack verdicts.
const (
	specAckNone uint32 = 0 // no conflict seen by the receiver
	specAckLose uint32 = 1 // receiver won a conflict: announcer must roll back
)

// specKickBulk is the kick-argument flag byte (appended after the epoch)
// that demotes a retry to bulk-sync pacing under adaptive throttling.
const specKickBulk byte = 1

// specBlockObj is the S-UPDR mobile object. Every field — including the
// full speculation state machine — is serialized, so a speculative block
// survives eviction to disk and migration between nodes mid-protocol.
type specBlockObj struct {
	Rect    geom.Rect
	H, Beta float64

	// All four neighbors (conflict announcements are symmetric, unlike
	// OUPDR's right/top-only interface shipping). Set by the initial kick.
	Left, Right, Top, Bottom core.MobilePtr

	ID int32 // linear block index j*Nb+i; the conflict priority (lower wins)
	Nb int32 // grid dimension

	MeshData []byte
	Elements int32
	Verts    int32

	// Speculation state machine.
	Phase       int32
	Epoch       int32
	AcksPending int32
	LosePending bool

	// Conflict-draw parameters (identical on every block of a run, so both
	// endpoints of a pair compute the same verdict).
	Prob float64
	Seed int64
}

func (o *specBlockObj) TypeID() uint16 { return typeSpecBlock }

func (o *specBlockObj) SizeHint() int {
	return 192 + len(o.MeshData)
}

func (o *specBlockObj) EncodeTo(w io.Writer) error {
	if err := writeRect(w, o.Rect); err != nil {
		return err
	}
	for _, f := range []float64{o.H, o.Beta, o.Prob} {
		if err := writeF64(w, f); err != nil {
			return err
		}
	}
	for _, p := range []core.MobilePtr{o.Left, o.Right, o.Top, o.Bottom} {
		if err := writePtr(w, p); err != nil {
			return err
		}
	}
	lose := uint32(0)
	if o.LosePending {
		lose = 1
	}
	us := []uint32{
		uint32(o.ID), uint32(o.Nb), uint32(o.Elements), uint32(o.Verts),
		uint32(o.Phase), uint32(o.Epoch), uint32(o.AcksPending), lose,
		uint32(o.Seed), uint32(o.Seed >> 32),
	}
	for _, v := range us {
		if err := writeU32(w, v); err != nil {
			return err
		}
	}
	return writeBytes(w, o.MeshData)
}

func (o *specBlockObj) DecodeFrom(r io.Reader) error {
	var err error
	if o.Rect, err = readRect(r); err != nil {
		return err
	}
	for _, f := range []*float64{&o.H, &o.Beta, &o.Prob} {
		if *f, err = readF64(r); err != nil {
			return err
		}
	}
	for _, p := range []*core.MobilePtr{&o.Left, &o.Right, &o.Top, &o.Bottom} {
		if *p, err = readPtr(r); err != nil {
			return err
		}
	}
	var us [10]uint32
	for i := range us {
		if us[i], err = readU32(r); err != nil {
			return err
		}
	}
	o.ID, o.Nb = int32(us[0]), int32(us[1])
	o.Elements, o.Verts = int32(us[2]), int32(us[3])
	o.Phase, o.Epoch, o.AcksPending = int32(us[4]), int32(us[5]), int32(us[6])
	o.LosePending = us[7] != 0
	o.Seed = int64(uint64(us[8]) | uint64(us[9])<<32)
	if o.MeshData, err = readBytes(r); err != nil {
		return err
	}
	if len(o.MeshData) == 0 {
		o.MeshData = nil
	}
	return nil
}

// conflictDraw is the deterministic conflict oracle: a pure hash of the
// unordered block pair and the epoch, mapped to [0,1). A draw below the
// configured probability means "these two same-epoch cavities intersect".
// Both endpoints compute the identical value, so the two sides of every
// conflict agree without any coordination.
func conflictDraw(seed int64, lo, hi, epoch int32) float64 {
	x := uint64(seed)
	for _, v := range []uint64{uint64(uint32(lo)), uint64(uint32(hi)), uint64(uint32(epoch))} {
		x ^= v + 0x9e3779b97f4a7c15 + (x << 6) + (x >> 2)
	}
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// packSpecPtr packs a MobilePtr into the obs event ID field.
func packSpecPtr(p core.MobilePtr) uint64 {
	return uint64(uint32(p.Home))<<32 | uint64(p.Seq)
}

func encodeSpecEpoch(e int32) []byte {
	b := make([]byte, 4)
	binary.LittleEndian.PutUint32(b, uint32(e))
	return b
}

func encodeSpecAnnounce(from core.MobilePtr, id, epoch int32) []byte {
	var buf bytes.Buffer
	_ = writePtr(&buf, from)
	_ = writeU32(&buf, uint32(id))
	_ = writeU32(&buf, uint32(epoch))
	return buf.Bytes()
}

func decodeSpecAnnounce(b []byte) (from core.MobilePtr, id, epoch int32, err error) {
	r := bytesReader(b)
	if from, err = readPtr(r); err != nil {
		return
	}
	var u uint32
	if u, err = readU32(r); err != nil {
		return
	}
	id = int32(u)
	if u, err = readU32(r); err != nil {
		return
	}
	epoch = int32(u)
	return
}

func encodeSpecAck(epoch int32, verdict uint32) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint32(b[0:4], uint32(epoch))
	binary.LittleEndian.PutUint32(b[4:8], verdict)
	return b
}

// supdrShared carries the run-wide accumulators.
type supdrShared struct {
	elements  atomic.Int64
	verts     atomic.Int64
	mismatch  atomic.Int64
	checked   atomic.Int64
	announces atomic.Int64
	conflicts atomic.Int64
	rollbacks atomic.Int64
	throttled atomic.Int64

	dumpMu sync.Mutex
	dump   []BlockDump

	// Adaptive throttling: a sliding window over announce outcomes. When
	// the windowed conflict rate exceeds throttleRate, conflict losers
	// retry in bulk-sync pacing instead of re-speculating (rate <= 0
	// disables throttling entirely).
	throttleRate float64
	winMu        sync.Mutex
	win          []bool
	winIdx       int
	winFilled    int
	winConfl     int

	// Streaming export: when set, every block is framed into the store at
	// its commit point — the mesh becomes readable on disk while the run
	// is still going.
	export *meshstore.Writer
	expMu  sync.Mutex
	expErr error
}

// noteAnnounce feeds one announce outcome into the sliding window.
func (sh *supdrShared) noteAnnounce(conflicted bool) {
	if sh.throttleRate <= 0 {
		return
	}
	sh.winMu.Lock()
	defer sh.winMu.Unlock()
	if sh.winFilled == len(sh.win) {
		if sh.win[sh.winIdx] {
			sh.winConfl--
		}
	} else {
		sh.winFilled++
	}
	sh.win[sh.winIdx] = conflicted
	if conflicted {
		sh.winConfl++
	}
	sh.winIdx = (sh.winIdx + 1) % len(sh.win)
}

// throttleEngaged reports whether the windowed conflict rate exceeds the
// threshold. The window must be full first, so a single early conflict on
// a quiet run cannot trip it.
func (sh *supdrShared) throttleEngaged() bool {
	if sh.throttleRate <= 0 {
		return false
	}
	sh.winMu.Lock()
	defer sh.winMu.Unlock()
	if sh.winFilled < len(sh.win) {
		return false
	}
	return float64(sh.winConfl)/float64(sh.winFilled) > sh.throttleRate
}

func (sh *supdrShared) exportFail(err error) {
	sh.expMu.Lock()
	if sh.expErr == nil {
		sh.expErr = err
	}
	sh.expMu.Unlock()
}

// registerSUPDR installs the S-UPDR handlers on every node of the cluster.
func registerSUPDR(cl *cluster.Cluster, sh *supdrShared) {
	for _, rt := range cl.Runtimes() {
		rt.Register(hSpecMesh, func(c *core.Ctx, arg []byte) {
			specMeshHandler(c, c.Object().(*specBlockObj), arg, sh)
		})
		rt.Register(hSpecAnnounce, func(c *core.Ctx, arg []byte) {
			specAnnounceHandler(c, c.Object().(*specBlockObj), arg, sh)
		})
		rt.Register(hSpecAck, func(c *core.Ctx, arg []byte) {
			specAckHandler(c, c.Object().(*specBlockObj), arg, sh)
		})
		rt.Register(hSpecLose, func(c *core.Ctx, arg []byte) {
			specLoseHandler(c, c.Object().(*specBlockObj), arg, sh)
		})
		rt.Register(hSpecIface, func(c *core.Ctx, arg []byte) {
			specIfaceHandler(c.Object().(*specBlockObj), arg, sh)
		})
	}
}

func specNeighbors(o *specBlockObj) []core.MobilePtr {
	var out []core.MobilePtr
	for _, p := range []core.MobilePtr{o.Left, o.Right, o.Top, o.Bottom} {
		if !p.IsNil() {
			out = append(out, p)
		}
	}
	return out
}

// specMeshHandler starts (or retries) a speculative refinement.
func specMeshHandler(c *core.Ctx, o *specBlockObj, arg []byte, sh *supdrShared) {
	if len(arg) < 4 {
		return
	}
	e := int32(binary.LittleEndian.Uint32(arg))
	if o.Phase != specIdle || e < o.Epoch {
		return // stale or duplicate kick
	}
	if len(arg) >= 4+4*8 {
		// Initial kick: the driver supplies the four neighbor pointers (no
		// single creation order can — Left and Bottom do not exist yet when
		// the top-right corner is created).
		r := bytesReader(arg[4:])
		for _, p := range []*core.MobilePtr{&o.Left, &o.Right, &o.Top, &o.Bottom} {
			var err error
			if *p, err = readPtr(r); err != nil {
				return
			}
		}
	}
	if len(arg) == 5 && arg[4] == specKickBulk {
		// Throttled retry: bulk-sync pacing. No snapshot, no announce round —
		// refine and commit in one step, exactly like a barrier-paced block.
		// A committed cavity can no longer move, so any later same-epoch
		// announce against this block resolves against committed state; and
		// since meshBlock is pure, the mesh is the one every pacing produces.
		o.Epoch = e
		o.LosePending = false
		o.AcksPending = 0
		bm, err := meshBlock(o.Rect, o.H, o.Beta)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := bm.mesh.EncodeTo(&buf); err != nil {
			return
		}
		o.MeshData = buf.Bytes()
		o.Elements = int32(bm.mesh.NumTriangles())
		o.Verts = int32(bm.mesh.NumVertices())
		specCommit(c, o, sh)
		return
	}

	o.Epoch = e
	// Snapshot the pre-refinement state; a conflict loser rolls back to
	// exactly this point and retries at the next epoch. Taken after the
	// epoch and neighbors are set so both survive the rollback.
	if err := c.Runtime().SnapshotObject(c.Self); err != nil {
		return
	}
	o.Phase = specInFlight
	o.LosePending = false

	// Announce BEFORE refining. A neighbor that has not speculated yet has
	// no cavity to conflict with, so it acks clean immediately — usually
	// inline, while it is still idle in the scheduler queue — and this
	// block's in-flight window shrinks to its own refinement time instead
	// of stretching until every neighbor has worked through its own heavy
	// kick. Detection does not suffer: in any conflicting pair, whichever
	// side announces later finds the other in flight or committed at the
	// same epoch, and that one announce decides the conflict for both.
	nbrs := specNeighbors(o)
	o.AcksPending = int32(len(nbrs))
	if len(nbrs) > 0 {
		// While acks are outstanding this block is the protocol's hot set:
		// keep it in-core preferentially (the paper's priority hint,
		// exactly as OUPDR pins blocks awaiting interface payloads) so the
		// ack and lose directives do not each pay a swap reload.
		c.SetPriority(c.Self, 5)
		ann := encodeSpecAnnounce(c.Self, o.ID, e)
		for _, nb := range nbrs {
			// Shared-memory fast path first: an in-core idle neighbor
			// evaluates the announcement inline in this goroutine, no
			// queue, no copy.
			if !c.CallInline(nb, hSpecAnnounce, ann) {
				c.Post(nb, hSpecAnnounce, ann)
			}
		}
	}

	bm, err := meshBlock(o.Rect, o.H, o.Beta)
	if err != nil {
		_ = c.Runtime().RollbackObject(c.Self)
		return
	}
	var buf bytes.Buffer
	if err := bm.mesh.EncodeTo(&buf); err != nil {
		_ = c.Runtime().RollbackObject(c.Self)
		return
	}
	o.MeshData = buf.Bytes()
	o.Elements = int32(bm.mesh.NumTriangles())
	o.Verts = int32(bm.mesh.NumVertices())
	// Shared totals are deliberately NOT added here: a rolled-back
	// speculation must leave no trace in the accumulators.

	// The conformity exchange is speculative too. meshBlock is pure, so a
	// retry after a rollback reproduces the identical interface — points
	// shipped from a doomed speculation are still the committed interface.
	// Shipping them now, on the first epoch only, means the right/top
	// receivers are usually not yet refined (tiny, in-core, CallInline-able)
	// instead of fat and possibly evicted by commit time, and a retry never
	// double-counts the receiver-side check.
	if e == 1 {
		if !o.Right.IsNil() {
			ifc := append([]byte{0}, encodePoints(bm.interfacePoints(0))...)
			if !c.CallInline(o.Right, hSpecIface, ifc) {
				c.Post(o.Right, hSpecIface, ifc)
			}
		}
		if !o.Top.IsNil() {
			ifc := append([]byte{1}, encodePoints(bm.interfacePoints(1))...)
			if !c.CallInline(o.Top, hSpecIface, ifc) {
				c.Post(o.Top, hSpecIface, ifc)
			}
		}
	}

	if len(nbrs) == 0 {
		specCommit(c, o, sh) // 1x1 grid: nothing to conflict with
	}
	// Otherwise the acks already queued behind this handler drive the
	// commit the moment the handler returns (specAckHandler runs only
	// after the refinement, so MeshData is always set by commit time).
}

// specAnnounceHandler evaluates a neighbor's speculation announcement
// against this block's own state and replies with exactly one ack.
func specAnnounceHandler(c *core.Ctx, o *specBlockObj, arg []byte, sh *supdrShared) {
	from, fromID, e, err := decodeSpecAnnounce(arg)
	if err != nil {
		return
	}
	sh.announces.Add(1)
	verdict := specAckNone
	lo, hi := o.ID, fromID
	if lo > hi {
		lo, hi = hi, lo
	}
	// Conflicts exist only between same-epoch cavity updates; an idle
	// receiver has no cavity to conflict with.
	conflicted := o.Epoch == e && o.Phase != specIdle && conflictDraw(o.Seed, lo, hi, e) < o.Prob
	sh.noteAnnounce(conflicted)
	if conflicted {
		sh.conflicts.Add(1)
		rt := c.Runtime()
		switch {
		case o.Phase == specCommitted:
			// A committed cavity can no longer move: the announcer loses
			// regardless of priority. This is also the progress guarantee —
			// losing to a committed neighbor means someone finished.
			verdict = specAckLose
			rt.Tracer().Emit(obs.KindSpeculConflict, packSpecPtr(from), int64(e))
			rt.PostMulticast([]core.MobilePtr{from, c.Self}, 1, hSpecLose, encodeSpecEpoch(e))
		case o.ID < fromID:
			// Both speculative: the lower block ID wins deterministically.
			verdict = specAckLose
			rt.Tracer().Emit(obs.KindSpeculConflict, packSpecPtr(from), int64(e))
			rt.PostMulticast([]core.MobilePtr{from, c.Self}, 1, hSpecLose, encodeSpecEpoch(e))
		default:
			// I lose. Block my own commit immediately — my remaining acks
			// may all arrive clean before the lose directive does — then
			// schedule the rollback through the conflict multicast.
			o.LosePending = true
			rt.Tracer().Emit(obs.KindSpeculConflict, packSpecPtr(c.Self), int64(e))
			rt.PostMulticast([]core.MobilePtr{c.Self, from}, 1, hSpecLose, encodeSpecEpoch(e))
		}
	}
	ack := encodeSpecAck(e, verdict)
	if !c.CallInline(from, hSpecAck, ack) {
		c.Post(from, hSpecAck, ack)
	}
}

// specAckHandler collects announce replies; the last clean ack commits.
func specAckHandler(c *core.Ctx, o *specBlockObj, arg []byte, sh *supdrShared) {
	if len(arg) < 8 {
		return
	}
	e := int32(binary.LittleEndian.Uint32(arg[0:4]))
	verdict := binary.LittleEndian.Uint32(arg[4:8])
	if o.Phase != specInFlight || o.Epoch != e {
		return // stale ack from an epoch we already rolled back
	}
	if verdict == specAckLose {
		o.LosePending = true
	}
	o.AcksPending--
	if o.AcksPending == 0 && !o.LosePending {
		specCommit(c, o, sh)
	}
	// With LosePending set the block holds at specInFlight until the
	// conflict multicast delivers the rollback directive.
}

// specLoseHandler rolls a conflict loser back to its pre-refinement
// snapshot and retries at the next epoch. Stale epochs make it idempotent:
// the symmetric detection on both endpoints of a pair may issue the
// directive twice, and a block that lost two conflicts in one epoch
// receives two directives — only the first acts.
func specLoseHandler(c *core.Ctx, o *specBlockObj, arg []byte, sh *supdrShared) {
	if len(arg) < 4 {
		return
	}
	e := int32(binary.LittleEndian.Uint32(arg))
	if o.Phase != specInFlight || o.Epoch != e {
		return
	}
	rt := c.Runtime()
	rt.Tracer().Emit(obs.KindSpeculRollback, packSpecPtr(c.Self), int64(e))
	sh.rollbacks.Add(1)
	if err := rt.RollbackObject(c.Self); err != nil {
		return
	}
	// o now holds the pre-refinement state again (idle, epoch e, neighbors
	// intact, no mesh). Retry one epoch up: a fresh snapshot, a fresh round
	// of announces, and no possible conflict with anything committed at e.
	// Under adaptive throttling a hot conflict window demotes the retry to
	// bulk-sync pacing instead — refine-and-commit with no speculation, so
	// a conflict storm stops feeding itself.
	kick := encodeSpecEpoch(e + 1)
	if sh.throttleEngaged() {
		sh.throttled.Add(1)
		rt.Tracer().Emit(obs.KindSpeculThrottle, packSpecPtr(c.Self), int64(e+1))
		kick = append(kick, specKickBulk)
	}
	c.Post(c.Self, hSpecMesh, kick)
}

// specCommit finalizes a speculation: the snapshot is discarded, totals are
// added, and the block's canonical digest is folded into the run digest.
func specCommit(c *core.Ctx, o *specBlockObj, sh *supdrShared) {
	c.Runtime().CommitObject(c.Self)
	o.Phase = specCommitted
	// Committed blocks leave the hot set: they are fair game for eviction
	// again, which is what keeps the still-speculating blocks resident.
	c.SetPriority(c.Self, 0)
	sh.elements.Add(int64(o.Elements))
	sh.verts.Add(int64(o.Verts))
	// A commit is irrevocable, so the canonical per-block digest is final
	// right now — and the mesh is still resident. Hashing here folds the
	// whole collection phase into the commit: bulk-sync OUPDR runs a
	// separate dump pass after its barrier and pays one cold reload per
	// block for the identical digest.
	nb := int(o.Nb)
	i, j := int(o.ID)%nb, int(o.ID)/nb
	sh.dumpMu.Lock()
	sh.dump = append(sh.dump, BlockDump{
		I:        i,
		J:        j,
		Elements: o.Elements,
		Hash:     hex.EncodeToString(hashMesh(o.MeshData)),
	})
	sh.dumpMu.Unlock()
	// Streaming export rides the same irrevocability: once committed, this
	// block's bytes can never change, so they are appended to the chunk
	// right now, mid-run — a reader polling the store sees the mesh grow.
	if sh.export != nil {
		if err := exportSpecBlock(sh.export, i, j, o); err != nil {
			sh.exportFail(err)
		}
	}
}

// exportSpecBlock frames a committed speculative block in the canonical
// blockObj payload encoding, so a store restores the same way no matter
// which generator wrote it. The speculation protocol state is dropped — a
// committed block's durable identity is its geometry and mesh — and the
// neighbor pointers are rewritten against the restoring run's placement
// anyway.
func exportSpecBlock(w *meshstore.Writer, i, j int, o *specBlockObj) error {
	return exportBlock(w, i, j, &blockObj{
		Rect:     o.Rect,
		H:        o.H,
		Beta:     o.Beta,
		Right:    o.Right,
		Top:      o.Top,
		MeshData: o.MeshData,
		Elements: o.Elements,
		Verts:    o.Verts,
	})
}

// specIfaceHandler verifies a committed neighbor's interface points against
// this block's own matching edge, recomputed on demand from the
// deterministic boundary spacing. Nothing is buffered in the receiver, so
// the check is immune to the receiver's own speculation state — it works
// identically whether the receiver is idle, in flight, rolled back or
// committed.
func specIfaceHandler(o *specBlockObj, arg []byte, sh *supdrShared) {
	if len(arg) < 1 {
		return
	}
	side := arg[0]
	pts, err := decodePoints(arg[1:])
	if err != nil {
		return
	}
	var a, b geom.Point
	if side == 0 {
		// From my left neighbor's right edge: compare against my left edge.
		a, b = o.Rect.Min, geom.Pt(o.Rect.Min.X, o.Rect.Max.Y)
	} else {
		// From my bottom neighbor's top edge: against my bottom edge.
		a, b = o.Rect.Min, geom.Pt(o.Rect.Max.X, o.Rect.Min.Y)
	}
	mine := edgePointsOn(boundaryPoints(o.Rect, o.H), a, b)
	if !samePoints(mine, pts) {
		sh.mismatch.Add(1)
	}
	sh.checked.Add(1)
}

// combineMeshHash folds per-block canonical hashes into the run-wide mesh
// digest: dumps sorted by (J, I), rendered in BlockDump's canonical line
// format, hashed once more. Two runs produce the same digest iff every
// block's refined mesh is byte-identical.
func combineMeshHash(dump []BlockDump) string {
	recs := make([]meshstore.HashRecord, len(dump))
	for i, d := range dump {
		recs[i] = meshstore.HashRecord{I: d.I, J: d.J, Elements: d.Elements, Hash: d.Hash}
	}
	return meshstore.CombineHash(recs)
}

// SUPDRConfig configures a speculative refinement run.
type SUPDRConfig struct {
	UPDRConfig
	// ConflictProb is the probability that two neighboring same-epoch
	// speculations are declared conflicting by the deterministic draw.
	// Zero reproduces pure optimistic execution (no rollbacks ever); one
	// forces the worst case where every announced pair conflicts.
	ConflictProb float64
	// Seed drives the conflict draw: same seed and config, same conflicts,
	// same rollback structure.
	Seed int64
	// ThrottleRate enables adaptive speculation throttling when positive:
	// once the conflict rate over the sliding announce window exceeds it,
	// conflict losers retry under bulk-sync pacing instead of
	// re-speculating. Zero (the default) never throttles.
	ThrottleRate float64
	// ThrottleWindow is the sliding window length in announces (0 = 32).
	ThrottleWindow int
	// Export, when non-nil, streams every block into the store at its
	// commit point: the chunk grows while generation is still running, and
	// a partial mesh is readable mid-run. The writer is left open for the
	// caller to Finalize.
	Export *meshstore.Writer
}

// RunSUPDR executes the speculative uniform method on an MRTS cluster: one
// mobile object per block, refinement kicked everywhere at once with no
// phase barrier, conflicts detected by epoch-stamped announcements and
// resolved by deterministic priority with snapshot rollback.
func RunSUPDR(cl *cluster.Cluster, cfg SUPDRConfig) (Result, error) {
	if err := cfg.defaults(); err != nil {
		return Result{}, err
	}
	if cfg.ConflictProb < 0 || cfg.ConflictProb > 1 {
		return Result{}, fmt.Errorf("meshgen: ConflictProb %v outside [0,1]", cfg.ConflictProb)
	}
	if cfg.ThrottleRate < 0 || cfg.ThrottleRate > 1 {
		return Result{}, fmt.Errorf("meshgen: ThrottleRate %v outside [0,1]", cfg.ThrottleRate)
	}
	start := time.Now()
	win := cfg.ThrottleWindow
	if win <= 0 {
		win = 32
	}
	sh := &supdrShared{
		throttleRate: cfg.ThrottleRate,
		win:          make([]bool, win),
		export:       cfg.Export,
	}
	registerSUPDR(cl, sh)

	h := workload.UniformSizeFor(cfg.TargetElements, 1.0)
	nb := cfg.Blocks
	ptrs := make([]core.MobilePtr, nb*nb)
	for j := 0; j < nb; j++ {
		for i := 0; i < nb; i++ {
			idx := j*nb + i
			ptrs[idx] = cl.RT(idx % cl.Nodes()).CreateObject(&specBlockObj{
				Rect: blockRect(nb, i, j),
				H:    h,
				Beta: cfg.QualityBound,
				ID:   int32(idx),
				Nb:   int32(nb),
				Prob: cfg.ConflictProb,
				Seed: cfg.Seed,
			})
		}
	}
	nbr := func(i, j int) core.MobilePtr {
		if i < 0 || i >= nb || j < 0 || j >= nb {
			return core.Nil
		}
		return ptrs[j*nb+i]
	}
	// Kick every block immediately — no phase barrier. The initial kick
	// carries the four neighbor pointers and the first epoch.
	for j := 0; j < nb; j++ {
		for i := 0; i < nb; i++ {
			var buf bytes.Buffer
			_ = writeU32(&buf, 1)
			_ = writePtr(&buf, nbr(i-1, j))
			_ = writePtr(&buf, nbr(i+1, j))
			_ = writePtr(&buf, nbr(i, j+1))
			_ = writePtr(&buf, nbr(i, j-1))
			p := ptrs[j*nb+i]
			cl.RT(int(p.Home)).Post(p, hSpecMesh, buf.Bytes())
		}
	}
	cl.Wait()

	if n := sh.elements.Load(); n == 0 {
		return Result{}, fmt.Errorf("meshgen: S-UPDR produced no elements")
	}
	if cfg.Export != nil {
		sh.expMu.Lock()
		expErr := sh.expErr
		sh.expMu.Unlock()
		if expErr == nil {
			expErr = cfg.Export.Err()
		}
		if expErr != nil {
			return Result{}, fmt.Errorf("meshgen: streaming export: %w", expErr)
		}
	}
	// No dump phase: every block hashed itself at commit time while its
	// mesh was still in core, so the canonical digest (same scheme as
	// RunOUPDR's) is already collected.
	sh.dumpMu.Lock()
	meshHash := combineMeshHash(sh.dump)
	sh.dumpMu.Unlock()

	return Result{
		Method:     "S-UPDR",
		Elements:   int(sh.elements.Load()),
		Vertices:   int(sh.verts.Load()),
		Subdomains: nb * nb,
		PEs:        cl.PEs(),
		Elapsed:    time.Since(start),
		Report:     cl.Report(),
		Mem:        cl.MemStats(),
		Conforming: sh.mismatch.Load() == 0 && sh.checked.Load() == int64(2*nb*(nb-1)),
		MeshHash:   meshHash,
		Conflicts:  sh.conflicts.Load(),
		Rollbacks:  sh.rollbacks.Load(),
		Throttled:  sh.throttled.Load(),
	}, nil
}

package meshgen

import (
	"testing"

	"mrts/internal/cluster"
)

// specTestConfig keeps the speculative property runs small enough to sweep
// many seeds: a 3x3 grid gives 12 interior interfaces (plenty of conflict
// surface) at a few thousand elements per run.
var specTestConfig = UPDRConfig{Blocks: 3, TargetElements: 5000}

func specTestCluster(t *testing.T, nodes int) *cluster.Cluster {
	t.Helper()
	cl, err := cluster.New(cluster.Config{
		Nodes:     nodes,
		MemBudget: 1 << 30,
		Factory:   Factory,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl
}

func specBulkSyncReference(t *testing.T) Result {
	t.Helper()
	res, err := RunOUPDR(specTestCluster(t, 2), specTestConfig)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeshHash == "" {
		t.Fatal("bulk-sync reference produced no mesh hash")
	}
	return res
}

// TestSpeculMeshEqualsBulkSync is the central S-UPDR property: across many
// conflict-draw seeds — each reshaping which speculations collide, who
// rolls back and in what order — the speculative mesh is byte-identical
// (canonical sorted-triangle digest) to the bulk-synchronous OUPDR mesh.
// The conflict probability ramps across seeds from occasional conflicts to
// the worst case where every announced pair collides every epoch, so both
// the no-rollback fast path and deep retry chains are exercised.
func TestSpeculMeshEqualsBulkSync(t *testing.T) {
	want := specBulkSyncReference(t)

	probs := []float64{0.1, 0.3, 0.5, 0.8, 1.0}
	for seed := int64(1); seed <= 20; seed++ {
		prob := probs[int(seed)%len(probs)]
		cl := specTestCluster(t, 2)
		got, err := RunSUPDR(cl, SUPDRConfig{
			UPDRConfig:   specTestConfig,
			ConflictProb: prob,
			Seed:         seed,
		})
		if err != nil {
			t.Fatalf("seed %d prob %.1f: %v", seed, prob, err)
		}
		if got.MeshHash != want.MeshHash {
			t.Errorf("seed %d prob %.1f: speculative mesh hash %s != bulk-sync %s",
				seed, prob, got.MeshHash, want.MeshHash)
		}
		if got.Elements != want.Elements {
			t.Errorf("seed %d prob %.1f: %d elements, bulk-sync has %d",
				seed, prob, got.Elements, want.Elements)
		}
		if !got.Conforming {
			t.Errorf("seed %d prob %.1f: interfaces no longer conform", seed, prob)
		}
		if prob == 1.0 && got.Rollbacks == 0 {
			t.Errorf("seed %d: worst-case conflict probability produced no rollbacks", seed)
		}
		// Every speculation either committed or rolled back: no snapshot
		// may outlive the run on any node.
		for _, rt := range cl.Runtimes() {
			if n := rt.SnapshotCount(); n != 0 {
				t.Errorf("seed %d prob %.1f: node holds %d unresolved speculation snapshots", seed, prob, n)
			}
			for _, msg := range rt.CheckInvariants(true) {
				t.Errorf("seed %d prob %.1f: invariant violated: %s", seed, prob, msg)
			}
		}
	}
}

// TestSpeculNoConflictsIsPureOptimism pins the zero-probability corner: no
// draw ever fires, so there must be no conflicts, no rollbacks, and not a
// single snapshot left behind — pure optimistic execution.
func TestSpeculNoConflictsIsPureOptimism(t *testing.T) {
	want := specBulkSyncReference(t)
	res, err := RunSUPDR(specTestCluster(t, 2), SUPDRConfig{
		UPDRConfig:   specTestConfig,
		ConflictProb: 0,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Conflicts != 0 || res.Rollbacks != 0 {
		t.Fatalf("prob 0 run saw %d conflicts / %d rollbacks, want none", res.Conflicts, res.Rollbacks)
	}
	if res.MeshHash != want.MeshHash {
		t.Fatalf("prob 0 mesh differs from bulk-sync")
	}
	if !res.Conforming {
		t.Fatal("interfaces do not conform")
	}
}

// TestSpeculReplayStableOutcome: the conflict draw is a pure function of
// (seed, pair, epoch), so replaying a seed must reproduce the identical
// mesh and detect conflicts again. The raw conflict COUNT is deliberately
// not compared: a drawn pair is detected once or twice depending on which
// side still sees the other in flight — an interleaving artifact the bench
// gate's tolerance absorbs. What is guaranteed is that every drawn pair is
// detected at least once (the later announce of the pair always finds its
// peer in flight or committed at the same epoch), and that resolution
// changes nothing about the final mesh.
func TestSpeculReplayStableOutcome(t *testing.T) {
	run := func() Result {
		res, err := RunSUPDR(specTestCluster(t, 2), SUPDRConfig{
			UPDRConfig:   specTestConfig,
			ConflictProb: 0.6,
			Seed:         42,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	for _, r := range []Result{a, b} {
		if r.Conflicts == 0 || r.Rollbacks == 0 {
			t.Fatalf("prob 0.6 run saw %d conflicts / %d rollbacks; the seeded draw must fire",
				r.Conflicts, r.Rollbacks)
		}
	}
	if a.MeshHash != b.MeshHash {
		t.Fatal("same seed produced different meshes")
	}
	if a.Elements != b.Elements {
		t.Fatalf("same seed produced %d vs %d elements", a.Elements, b.Elements)
	}
}

// TestSpeculSingleBlock pins the degenerate 1x1 grid: no neighbors, no
// announcements, immediate commit.
func TestSpeculSingleBlock(t *testing.T) {
	res, err := RunSUPDR(specTestCluster(t, 1), SUPDRConfig{
		UPDRConfig:   UPDRConfig{Blocks: 1, TargetElements: 2000},
		ConflictProb: 1.0,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Conflicts != 0 || res.Rollbacks != 0 {
		t.Fatalf("1x1 grid saw %d conflicts / %d rollbacks", res.Conflicts, res.Rollbacks)
	}
	if !res.Conforming {
		t.Fatal("1x1 grid must trivially conform (zero checks expected, zero seen)")
	}
}

// TestConflictDrawSymmetric: both endpoints of a pair must compute the
// identical verdict, whichever side evaluates — the protocol's whole
// no-negotiation premise.
func TestConflictDrawSymmetric(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		for e := int32(1); e < 5; e++ {
			for a := int32(0); a < 9; a++ {
				for b := a + 1; b < 9; b++ {
					if conflictDraw(seed, a, b, e) != conflictDraw(seed, a, b, e) {
						t.Fatal("draw not deterministic")
					}
					d := conflictDraw(seed, a, b, e)
					if d < 0 || d >= 1 {
						t.Fatalf("draw %v outside [0,1)", d)
					}
				}
			}
		}
	}
	// Distinct epochs must decorrelate the same pair (retries at e+1 are
	// fresh draws, not replays of the losing one).
	same := 0
	for e := int32(1); e <= 64; e++ {
		if conflictDraw(7, 1, 2, e) == conflictDraw(7, 1, 2, e+1) {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d adjacent epochs produced identical draws", same)
	}
}

// Package meshstore implements the versioned, chunked, rank-independent
// on-disk mesh format (the DMPlex-style parallel checkpoint/serve format).
//
// A store is a directory. Each writer (one per node) appends framed block
// records to its own chunk file, chunk-<writer>.mshc, so an N-node run
// writes N chunks fully in parallel with no coordination beyond the
// directory name. Frames are self-describing and self-verifying: every
// frame carries the block key, grid coordinates, the block's canonical
// mesh digest, and a SHA-256 of the raw payload, so any reader can check
// integrity without the cluster that wrote it. A manifest
// (manifest-<writer>.json per writer, MANIFEST.json once merged) indexes
// the frames and carries the run-wide combined MeshHash.
//
// Two properties shape the format:
//
//   - Rank independence: nothing in a chunk or manifest binds a block to
//     the node that wrote it. A mesh written by N nodes restores onto M
//     nodes by repartitioning block keys through a fresh consistent-hash
//     placement — the chunk a block came from is irrelevant.
//   - Streaming append: frames are written at irrevocable commit points
//     while generation is still running, and readers tolerate a truncated
//     trailing frame (a crash mid-append, or a read racing the writer), so
//     a partial mesh is readable mid-run.
package meshstore

import (
	"compress/flate"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"sync"
)

// FormatVersion is bumped on any incompatible change to the frame or
// manifest layout. Readers reject versions they don't know.
const FormatVersion = 1

const (
	// frameMagic opens every frame: "MSC1".
	frameMagic = "MSC1"
	// frameFixedLen is the fixed-size frame header before the variable
	// key, hash, and payload sections.
	frameFixedLen = 60

	codecRaw   = 0
	codecFlate = 1

	// maxPayloadBytes bounds both rawLen and encLen on decode so a corrupt
	// or hostile frame header cannot drive an unbounded allocation.
	maxPayloadBytes = 1 << 28
	// compressMin is the smallest payload worth running through flate.
	compressMin = 512
	// maxManifestBytes bounds the manifest JSON decode (the merge path's
	// one variable-size external input).
	maxManifestBytes = 64 << 20
)

// frameHeader is the decoded fixed+variable header of one frame.
//
// On-disk layout (little-endian):
//
//	off  len
//	  0    4  magic "MSC1"
//	  4    1  codec (0 raw, 1 flate)
//	  5    1  key length K
//	  6    1  canonical-hash length H
//	  7    1  reserved (0)
//	  8    4  u32 block i
//	 12    4  u32 block j
//	 16    4  u32 elements
//	 20    4  u32 rawLen   (payload size before compression)
//	 24    4  u32 encLen   (payload size on disk; == rawLen when raw)
//	 28   32  SHA-256 of the raw payload
//	 60    K  block key
//	 60+K  H  canonical mesh digest (hex, or a tagged fallback string)
//	 ...      encLen payload bytes
type frameHeader struct {
	Codec    byte
	Key      string
	Hash     string
	I, J     int
	Elements int32
	RawLen   int
	EncLen   int
	Sum      [32]byte
}

// varLen is the frame length after the fixed header, excluding the payload.
func (h *frameHeader) varLen() int { return len(h.Key) + len(h.Hash) }

// frameLen is the total on-disk frame length.
func (h *frameHeader) frameLen() int64 {
	return int64(frameFixedLen + h.varLen() + h.EncLen)
}

// parseFixed decodes and bounds-checks the fixed header section.
func parseFixed(b []byte) (frameHeader, int, int, error) {
	var h frameHeader
	if len(b) < frameFixedLen {
		return h, 0, 0, fmt.Errorf("meshstore: short frame header")
	}
	if string(b[0:4]) != frameMagic {
		return h, 0, 0, fmt.Errorf("meshstore: bad frame magic %q", b[0:4])
	}
	h.Codec = b[4]
	if h.Codec != codecRaw && h.Codec != codecFlate {
		return h, 0, 0, fmt.Errorf("meshstore: unknown codec %d", h.Codec)
	}
	keyLen, hashLen := int(b[5]), int(b[6])
	h.I = int(binary.LittleEndian.Uint32(b[8:]))
	h.J = int(binary.LittleEndian.Uint32(b[12:]))
	h.Elements = int32(binary.LittleEndian.Uint32(b[16:]))
	h.RawLen = int(binary.LittleEndian.Uint32(b[20:]))
	h.EncLen = int(binary.LittleEndian.Uint32(b[24:]))
	copy(h.Sum[:], b[28:60])
	if h.RawLen > maxPayloadBytes || h.EncLen > maxPayloadBytes {
		return h, 0, 0, fmt.Errorf("meshstore: frame payload %d/%d exceeds bound %d", h.RawLen, h.EncLen, maxPayloadBytes)
	}
	if h.Codec == codecRaw && h.EncLen != h.RawLen {
		return h, 0, 0, fmt.Errorf("meshstore: raw frame encLen %d != rawLen %d", h.EncLen, h.RawLen)
	}
	return h, keyLen, hashLen, nil
}

// flate pools: compression state is large (~600 KiB per writer), so both
// directions are pooled exactly like the tier-0.5 swap codec.
var flateWriterPool sync.Pool

func getFlateWriter(w io.Writer) *flate.Writer {
	if fw, ok := flateWriterPool.Get().(*flate.Writer); ok {
		fw.Reset(w)
		return fw
	}
	fw, err := flate.NewWriter(w, flate.BestSpeed)
	if err != nil {
		// Only reachable for an invalid level constant.
		panic(err)
	}
	return fw
}

func putFlateWriter(fw *flate.Writer) { flateWriterPool.Put(fw) }

var flateReaderPool sync.Pool

type byteSliceReader struct {
	b []byte
}

func (r *byteSliceReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}

func (r *byteSliceReader) ReadByte() (byte, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	c := r.b[0]
	r.b = r.b[1:]
	return c, nil
}

// decodePayload inflates (or copies) one frame's payload section into a
// freshly owned slice and verifies it against the frame's SHA-256.
func decodePayload(h frameHeader, enc []byte) ([]byte, error) {
	if len(enc) != h.EncLen {
		return nil, fmt.Errorf("meshstore: frame %q payload section %d bytes, want %d", h.Key, len(enc), h.EncLen)
	}
	out := make([]byte, h.RawLen)
	switch h.Codec {
	case codecRaw:
		copy(out, enc)
	case codecFlate:
		src := &byteSliceReader{b: enc}
		fr, ok := flateReaderPool.Get().(io.ReadCloser)
		if ok {
			if err := fr.(flate.Resetter).Reset(src, nil); err != nil {
				return nil, fmt.Errorf("meshstore: flate reset: %w", err)
			}
		} else {
			fr = flate.NewReader(src)
		}
		defer flateReaderPool.Put(fr)
		if _, err := io.ReadFull(fr, out); err != nil {
			return nil, fmt.Errorf("meshstore: frame %q inflate: %w", h.Key, err)
		}
		// The stream must end exactly at rawLen: trailing compressed data
		// means the header lied about the raw size.
		var extra [1]byte
		if n, _ := fr.Read(extra[:]); n != 0 {
			return nil, fmt.Errorf("meshstore: frame %q inflates past rawLen %d", h.Key, h.RawLen)
		}
	}
	if sha256.Sum256(out) != h.Sum {
		return nil, fmt.Errorf("meshstore: frame %q payload digest mismatch", h.Key)
	}
	return out, nil
}

// HashRecord is the per-block input to the run-wide combined mesh digest:
// grid coordinates, refined element count, and the block's canonical hash.
type HashRecord struct {
	I, J     int
	Elements int32
	Hash     string
}

// CombineHash folds per-block canonical digests into the run-wide MeshHash.
// The rendering — blocks sorted by (J, I), one "J I Elements Hash" line
// each — is the format's canonical digest rule; meshgen's in-cluster dump
// path delegates here, so an offline reader of a store computes the exact
// hash a live cluster would report.
func CombineHash(recs []HashRecord) string {
	sorted := append([]HashRecord(nil), recs...)
	sort.Slice(sorted, func(a, b int) bool {
		if sorted[a].J != sorted[b].J {
			return sorted[a].J < sorted[b].J
		}
		return sorted[a].I < sorted[b].I
	})
	h := sha256.New()
	for _, r := range sorted {
		fmt.Fprintf(h, "%d %d %d %s\n", r.J, r.I, r.Elements, r.Hash)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// BlockKey is the canonical key of grid block (i, j); it matches the
// directory key the placement layer hashes, so a restored run repartitions
// blocks by the same identity the writing run placed them under.
func BlockKey(i, j int) string { return fmt.Sprintf("block-%d-%d", i, j) }

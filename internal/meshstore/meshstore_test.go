package meshstore

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testPayload builds a deterministic, semi-compressible payload: runs of
// seeded bytes so flate shrinks it, but not trivially.
func testPayload(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	for i := 0; i < n; {
		run := 4 + rng.Intn(12)
		c := byte(rng.Intn(40))
		for j := 0; j < run && i < n; j++ {
			b[i] = c
			i++
		}
	}
	return b
}

func blockHash(payload []byte) string {
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}

// writeTestStore writes a complete blocks×blocks grid across `writers`
// chunks (round-robin), merges, and returns the merged manifest.
func writeTestStore(t *testing.T, dir string, blocks, writers int, compress bool) *Manifest {
	t.Helper()
	meta := Meta{Blocks: blocks, TargetElements: 1000, QualityBound: 1.5}
	ws := make([]*Writer, writers)
	for w := range ws {
		var err error
		ws[w], err = NewWriter(WriterConfig{Dir: dir, Writer: w, Meta: meta, Compress: compress})
		if err != nil {
			t.Fatalf("NewWriter(%d): %v", w, err)
		}
	}
	idx := 0
	for j := 0; j < blocks; j++ {
		for i := 0; i < blocks; i++ {
			p := testPayload(int64(idx+1), 600+137*idx)
			w := ws[idx%writers]
			if err := w.Append(BlockKey(i, j), i, j, int32(100+idx), blockHash(p), p); err != nil {
				t.Fatalf("Append(%d,%d): %v", i, j, err)
			}
			idx++
		}
	}
	for w, wr := range ws {
		if _, err := wr.Finalize(); err != nil {
			t.Fatalf("Finalize(%d): %v", w, err)
		}
	}
	man, err := MergeManifests(dir)
	if err != nil {
		t.Fatalf("MergeManifests: %v", err)
	}
	return man
}

func TestWriteMergeReadRoundTrip(t *testing.T) {
	for _, compress := range []bool{false, true} {
		t.Run(fmt.Sprintf("compress=%v", compress), func(t *testing.T) {
			dir := t.TempDir()
			man := writeTestStore(t, dir, 3, 2, compress)
			if man.Partial {
				t.Fatal("merged manifest of a full grid marked partial")
			}
			if man.MeshHash == "" {
				t.Fatal("complete manifest missing MeshHash")
			}
			if got := man.Blocks(); got != 9 {
				t.Fatalf("manifest has %d blocks, want 9", got)
			}
			st, err := Open(dir)
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			defer st.Close()
			idx := 0
			for j := 0; j < 3; j++ {
				for i := 0; i < 3; i++ {
					want := testPayload(int64(idx+1), 600+137*idx)
					got, rec, err := st.Payload(BlockKey(i, j))
					if err != nil {
						t.Fatalf("Payload(%d,%d): %v", i, j, err)
					}
					if !bytes.Equal(got, want) {
						t.Fatalf("payload (%d,%d) differs after round trip", i, j)
					}
					if rec.Elements != int32(100+idx) || rec.I != i || rec.J != j {
						t.Fatalf("record (%d,%d) = %+v", i, j, rec)
					}
					idx++
				}
			}
		})
	}
}

func TestCompressionShrinksChunks(t *testing.T) {
	raw := t.TempDir()
	comp := t.TempDir()
	writeTestStore(t, raw, 3, 1, false)
	writeTestStore(t, comp, 3, 1, true)
	rawSize := chunkSize(t, raw)
	compSize := chunkSize(t, comp)
	if compSize >= rawSize {
		t.Fatalf("compressed chunk %d >= raw chunk %d", compSize, rawSize)
	}
}

func chunkSize(t *testing.T, dir string) int64 {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "chunk-*.mshc"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no chunks in %s: %v", dir, err)
	}
	var total int64
	for _, n := range names {
		fi, err := os.Stat(n)
		if err != nil {
			t.Fatal(err)
		}
		total += fi.Size()
	}
	return total
}

func TestVerifyCleanStore(t *testing.T) {
	dir := t.TempDir()
	man := writeTestStore(t, dir, 3, 2, true)
	rep, err := Verify(dir)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !rep.OK() {
		t.Fatalf("clean store has problems: %v", rep.Problems)
	}
	if rep.Partial {
		t.Fatal("complete store verified partial")
	}
	if rep.MeshHash != man.MeshHash {
		t.Fatalf("verify MeshHash %s != manifest %s", rep.MeshHash, man.MeshHash)
	}
	if rep.Blocks != 9 {
		t.Fatalf("verify saw %d blocks, want 9", rep.Blocks)
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	writeTestStore(t, dir, 3, 1, false)
	// Flip a byte in the middle of the first frame's payload.
	path := filepath.Join(dir, chunkName(0))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[frameFixedLen+30] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := Verify(dir)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if rep.OK() {
		t.Fatal("verify missed a corrupted payload")
	}
}

func TestTruncatedChunkReadsPartialPrefix(t *testing.T) {
	dir := t.TempDir()
	meta := Meta{Blocks: 2, TargetElements: 100}
	w, err := NewWriter(WriterConfig{Dir: dir, Writer: 0, Meta: meta})
	if err != nil {
		t.Fatal(err)
	}
	var offAfter2 int64
	for k := 0; k < 3; k++ {
		p := testPayload(int64(k+1), 900)
		if err := w.Append(BlockKey(k%2, k/2), k%2, k/2, int32(k), blockHash(p), p); err != nil {
			t.Fatal(err)
		}
		if k == 1 {
			offAfter2 = w.Bytes()
		}
	}
	if err := w.Close(); err != nil { // no manifest: simulates a crash
		t.Fatal(err)
	}
	// Chop the third frame in half — a SIGKILL mid-append.
	path := filepath.Join(dir, chunkName(0))
	if err := os.Truncate(path, offAfter2+(w.Bytes()-offAfter2)/2); err != nil {
		t.Fatal(err)
	}
	res, err := ScanChunk(path, true)
	if err != nil {
		t.Fatalf("ScanChunk: %v", err)
	}
	if !res.Partial {
		t.Fatal("truncated chunk not marked partial")
	}
	if len(res.Chunk.Records) != 2 {
		t.Fatalf("recovered %d frames, want the 2 intact ones", len(res.Chunk.Records))
	}
	if len(res.Problems) != 0 {
		t.Fatalf("intact prefix reported problems: %v", res.Problems)
	}
	// The store opens without any manifest and serves the intact prefix.
	st, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer st.Close()
	if !st.Partial() {
		t.Fatal("manifest-less truncated store not partial")
	}
	got, _, err := st.Payload(BlockKey(1, 0))
	if err != nil {
		t.Fatalf("Payload from partial store: %v", err)
	}
	if !bytes.Equal(got, testPayload(2, 900)) {
		t.Fatal("partial store served wrong payload")
	}
}

func TestRewriteAfterCrashReplacesChunk(t *testing.T) {
	dir := t.TempDir()
	meta := Meta{Blocks: 1, TargetElements: 10}
	w, err := NewWriter(WriterConfig{Dir: dir, Writer: 0, Meta: meta})
	if err != nil {
		t.Fatal(err)
	}
	p := testPayload(7, 2000)
	if err := w.Append(BlockKey(0, 0), 0, 0, 5, blockHash(p), p); err != nil {
		t.Fatal(err)
	}
	w.Close() // crash: no manifest
	// Relaunch: a fresh writer truncates and rewrites the whole partition.
	w2, err := NewWriter(WriterConfig{Dir: dir, Writer: 0, Meta: meta})
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Append(BlockKey(0, 0), 0, 0, 5, blockHash(p), p); err != nil {
		t.Fatal(err)
	}
	if _, err := w2.Finalize(); err != nil {
		t.Fatal(err)
	}
	man, err := MergeManifests(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man.Partial {
		t.Fatal("rewritten store still partial")
	}
	rep, err := Verify(dir)
	if err != nil || !rep.OK() {
		t.Fatalf("rewritten store fails verify: %v %v", err, rep.Problems)
	}
}

func TestCombineHashMatchesSpec(t *testing.T) {
	// The canonical digest rule, spelled out: sort by (J, I), render
	// "J I Elements Hash\n" per block, sha256 the lot.
	recs := []HashRecord{
		{I: 1, J: 0, Elements: 10, Hash: "bb"},
		{I: 0, J: 1, Elements: 30, Hash: "cc"},
		{I: 0, J: 0, Elements: 20, Hash: "aa"},
	}
	h := sha256.New()
	fmt.Fprintf(h, "0 0 20 aa\n0 1 10 bb\n1 0 30 cc\n")
	want := hex.EncodeToString(h.Sum(nil))
	if got := CombineHash(recs); got != want {
		t.Fatalf("CombineHash = %s, want %s", got, want)
	}
	// Input order must not matter.
	rev := []HashRecord{recs[2], recs[0], recs[1]}
	if CombineHash(rev) != want {
		t.Fatal("CombineHash depends on input order")
	}
}

func TestManifestDecodeBounded(t *testing.T) {
	dir := t.TempDir()
	big := strings.Repeat(" ", maxManifestBytes+2)
	path := filepath.Join(dir, MergedManifestName)
	if err := os.WriteFile(path, []byte(big), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readManifestFile(path); err == nil || !strings.Contains(err.Error(), "bound") {
		t.Fatalf("oversized manifest not rejected: %v", err)
	}
}

func TestIsChunkName(t *testing.T) {
	good := []string{"chunk-000.mshc", "chunk-007.mshc", "chunk-1234.mshc"}
	for _, n := range good {
		if !IsChunkName(n) {
			t.Errorf("IsChunkName(%q) = false", n)
		}
	}
	bad := []string{"", "chunk-.mshc", "chunk-00.mshc", "../chunk-000.mshc",
		"chunk-000.mshc.tmp", "MANIFEST.json", "chunk--01.mshc", "chunk-000.mshcx"}
	for _, n := range bad {
		if IsChunkName(n) {
			t.Errorf("IsChunkName(%q) = true", n)
		}
	}
}

func TestWriterRejectsAfterFinalize(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(WriterConfig{Dir: dir, Writer: 0, Meta: Meta{Blocks: 1}})
	if err != nil {
		t.Fatal(err)
	}
	p := []byte("x")
	if err := w.Append(BlockKey(0, 0), 0, 0, 1, blockHash(p), p); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Finalize(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(BlockKey(0, 0), 0, 0, 1, blockHash(p), p); err == nil {
		t.Fatal("append after Finalize succeeded")
	}
}

package meshstore

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Meta carries the generation parameters a rank-independent restore needs:
// the grid dimension and the refinement inputs. Node count and placement
// are deliberately absent — they are properties of the writing run, not of
// the mesh.
type Meta struct {
	Blocks         int     `json:"blocks"`
	TargetElements int     `json:"target_elements"`
	QualityBound   float64 `json:"quality_bound,omitempty"`
}

// Record indexes one block frame inside a chunk.
type Record struct {
	Key        string `json:"key"`
	I          int    `json:"i"`
	J          int    `json:"j"`
	Elements   int32  `json:"elements"`
	Hash       string `json:"hash"`
	PayloadSHA string `json:"payload_sha256"`
	Offset     int64  `json:"offset"`
	Length     int64  `json:"length"`
	RawLen     int    `json:"raw_len"`
}

// HashRecord projects the record onto the combined-digest input.
func (r Record) HashRecord() HashRecord {
	return HashRecord{I: r.I, J: r.J, Elements: r.Elements, Hash: r.Hash}
}

// Chunk describes one chunk file and the frames it holds.
type Chunk struct {
	Name    string   `json:"name"`
	Writer  int      `json:"writer"`
	Bytes   int64    `json:"bytes"`
	Records []Record `json:"records"`
}

// Manifest is the store's index: format version, generation meta, the
// chunk index, and — once the grid is fully covered — the run-wide
// combined MeshHash. Partial marks a store that does not (yet) cover the
// whole grid: a mid-run streaming export, or a crash-truncated one.
type Manifest struct {
	Format   int     `json:"format"`
	Meta     Meta    `json:"meta"`
	Writers  int     `json:"writers,omitempty"`
	Partial  bool    `json:"partial,omitempty"`
	MeshHash string  `json:"mesh_hash,omitempty"`
	Chunks   []Chunk `json:"chunks"`
}

// MergedManifestName is the file a complete, merged store is indexed by.
const MergedManifestName = "MANIFEST.json"

func chunkName(writer int) string    { return fmt.Sprintf("chunk-%03d.mshc", writer) }
func manifestName(writer int) string { return fmt.Sprintf("manifest-%03d.json", writer) }

// IsChunkName reports whether name is a well-formed chunk file name. It is
// the only sanctioned way for a server to map request paths onto store
// files, so path traversal never reaches the filesystem.
func IsChunkName(name string) bool {
	var w int
	if _, err := fmt.Sscanf(name, "chunk-%d.mshc", &w); err != nil {
		return false
	}
	return w >= 0 && name == chunkName(w)
}

// Blocks counts the records across all chunks.
func (m *Manifest) Blocks() int {
	n := 0
	for _, c := range m.Chunks {
		n += len(c.Records)
	}
	return n
}

// Records returns all records across chunks in canonical (J, I) order.
func (m *Manifest) Records() []Record {
	out := make([]Record, 0, m.Blocks())
	for _, c := range m.Chunks {
		out = append(out, c.Records...)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].J != out[b].J {
			return out[a].J < out[b].J
		}
		return out[a].I < out[b].I
	})
	return out
}

// hashRecords projects every record onto the combined-digest input.
func (m *Manifest) hashRecords() []HashRecord {
	recs := m.Records()
	out := make([]HashRecord, len(recs))
	for i, r := range recs {
		out[i] = r.HashRecord()
	}
	return out
}

// complete reports whether the manifest covers the full Blocks×Blocks grid
// with every block key appearing exactly once.
func (m *Manifest) complete() (bool, []string) {
	var problems []string
	nb := m.Meta.Blocks
	if nb <= 0 {
		return false, nil
	}
	seen := make(map[string]bool, m.Blocks())
	for _, c := range m.Chunks {
		for _, r := range c.Records {
			if seen[r.Key] {
				problems = append(problems, fmt.Sprintf("block %q appears more than once", r.Key))
			}
			seen[r.Key] = true
			if r.I < 0 || r.I >= nb || r.J < 0 || r.J >= nb {
				problems = append(problems, fmt.Sprintf("block %q outside %dx%d grid", r.Key, nb, nb))
			}
			if r.Key != BlockKey(r.I, r.J) {
				problems = append(problems, fmt.Sprintf("block key %q does not match coordinates (%d,%d)", r.Key, r.I, r.J))
			}
		}
	}
	return len(seen) == nb*nb && len(problems) == 0, problems
}

// seal recomputes the manifest's Partial flag and, when the grid is fully
// covered, its combined MeshHash.
func (m *Manifest) seal() {
	ok, _ := m.complete()
	m.Partial = !ok
	if ok {
		m.MeshHash = CombineHash(m.hashRecords())
	} else {
		m.MeshHash = ""
	}
}

// readManifestFile decodes one manifest JSON file under the decode bound.
func readManifestFile(path string) (*Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	// The +1 makes an at-bound file distinguishable from an over-bound one.
	data, err := io.ReadAll(io.LimitReader(f, maxManifestBytes+1))
	if err != nil {
		return nil, fmt.Errorf("meshstore: read %s: %w", path, err)
	}
	if len(data) > maxManifestBytes {
		return nil, fmt.Errorf("meshstore: manifest %s exceeds %d-byte bound", path, maxManifestBytes)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("meshstore: decode %s: %w", path, err)
	}
	if m.Format != FormatVersion {
		return nil, fmt.Errorf("meshstore: %s has format %d, reader supports %d", path, m.Format, FormatVersion)
	}
	return &m, nil
}

// writeManifestFile writes a manifest atomically (temp file + rename), so
// a reader never observes a half-written index even while writers run.
func writeManifestFile(path string, m *Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// MergeManifests folds every per-writer manifest in dir into the single
// MANIFEST.json index and returns it. All writers must agree on format and
// meta; the merged manifest is sealed (Partial recomputed, MeshHash set
// when the grid is fully covered). Merging reads only the small per-writer
// indexes — mesh payloads never pass through the merging process.
func MergeManifests(dir string) (*Manifest, error) {
	names, err := filepath.Glob(filepath.Join(dir, "manifest-*.json"))
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("meshstore: no per-writer manifests in %s", dir)
	}
	sort.Strings(names)
	merged := &Manifest{Format: FormatVersion}
	for i, name := range names {
		m, err := readManifestFile(name)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			merged.Meta = m.Meta
		} else if m.Meta != merged.Meta {
			return nil, fmt.Errorf("meshstore: %s meta %+v disagrees with %+v", name, m.Meta, merged.Meta)
		}
		merged.Chunks = append(merged.Chunks, m.Chunks...)
	}
	merged.Writers = len(names)
	merged.seal()
	if err := writeManifestFile(filepath.Join(dir, MergedManifestName), merged); err != nil {
		return nil, err
	}
	return merged, nil
}

package meshstore

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"mrts/internal/bufpool"
	"mrts/internal/obs"
)

// ScanResult is what a sequential chunk walk recovered.
type ScanResult struct {
	Chunk Chunk
	// Partial is set when the walk stopped before the end of the file: a
	// truncated or corrupt trailing frame. Everything before it is intact.
	Partial bool
	// TailBytes counts the bytes ignored after the last whole frame.
	TailBytes int64
	// Problems lists deep-verification failures (payload digest
	// mismatches) on otherwise well-formed frames.
	Problems []string
}

// ScanChunk walks a chunk file frame by frame and rebuilds its index. A
// truncated or corrupt tail — a writer crash mid-append, or a scan racing
// a live writer — terminates the walk cleanly with Partial set rather than
// erroring: the intact prefix is the usable mesh. With deep set, every
// payload is read and checked against its frame digest.
func ScanChunk(path string, deep bool) (ScanResult, error) {
	var res ScanResult
	f, err := os.Open(path)
	if err != nil {
		return res, err
	}
	defer f.Close()
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return res, err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return res, err
	}
	res.Chunk.Name = filepath.Base(path)
	var w int
	if _, err := fmt.Sscanf(res.Chunk.Name, "chunk-%d.mshc", &w); err == nil {
		res.Chunk.Writer = w
	}

	br := bufio.NewReaderSize(f, 1<<16)
	var off int64
	var hdr [frameFixedLen]byte
	for off < size {
		if size-off < frameFixedLen {
			break // truncated header
		}
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			break
		}
		h, keyLen, hashLen, err := parseFixed(hdr[:])
		if err != nil {
			break // corrupt tail
		}
		varAndPayload := int64(keyLen + hashLen + h.EncLen)
		if size-off-frameFixedLen < varAndPayload {
			break // truncated body
		}
		kh := make([]byte, keyLen+hashLen)
		if _, err := io.ReadFull(br, kh); err != nil {
			break
		}
		h.Key, h.Hash = string(kh[:keyLen]), string(kh[keyLen:])
		if deep {
			enc := bufpool.Get(h.EncLen)
			if _, err := io.ReadFull(br, enc); err != nil {
				bufpool.Put(enc)
				break
			}
			if _, derr := decodePayload(h, enc); derr != nil {
				res.Problems = append(res.Problems, derr.Error())
			}
			bufpool.Put(enc)
		} else {
			if _, err := br.Discard(h.EncLen); err != nil {
				break
			}
		}
		res.Chunk.Records = append(res.Chunk.Records, Record{
			Key:        h.Key,
			I:          h.I,
			J:          h.J,
			Elements:   h.Elements,
			Hash:       h.Hash,
			PayloadSHA: fmt.Sprintf("%x", h.Sum),
			Offset:     off,
			Length:     h.frameLen(),
			RawLen:     h.RawLen,
		})
		off += h.frameLen()
	}
	res.Chunk.Bytes = off
	res.TailBytes = size - off
	res.Partial = res.TailBytes > 0
	return res, nil
}

// Store is a read handle on a store directory: the manifest (merged, or
// assembled from a chunk scan when none exists yet) plus per-chunk file
// handles for random block access.
type Store struct {
	dir string
	man *Manifest

	mu    sync.Mutex
	files map[string]*os.File
	index map[string]blockLoc
}

type blockLoc struct {
	chunk string
	rec   Record
}

// Open opens a store for reading. If MANIFEST.json exists it is the
// index; otherwise — a mid-run or crash-interrupted store — the chunks
// themselves are scanned and the assembled manifest is marked Partial
// unless the scan alone proves full grid coverage. No cluster state is
// consulted: a store is readable wherever the directory is.
func Open(dir string) (*Store, error) {
	man, err := readManifestFile(filepath.Join(dir, MergedManifestName))
	if os.IsNotExist(err) {
		man, err = assembleFromChunks(dir)
	}
	if err != nil {
		return nil, err
	}
	s := &Store{
		dir:   dir,
		man:   man,
		files: make(map[string]*os.File),
		index: make(map[string]blockLoc),
	}
	for _, c := range man.Chunks {
		for _, r := range c.Records {
			s.index[r.Key] = blockLoc{chunk: c.Name, rec: r}
		}
	}
	return s, nil
}

// assembleFromChunks rebuilds a manifest by scanning every chunk file in
// dir. Used for stores that were never merged: a run still in progress,
// or one killed before Finalize.
func assembleFromChunks(dir string) (*Manifest, error) {
	names, err := filepath.Glob(filepath.Join(dir, "chunk-*.mshc"))
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("meshstore: no manifest and no chunks in %s", dir)
	}
	sort.Strings(names)
	man := &Manifest{Format: FormatVersion}
	for _, name := range names {
		res, err := ScanChunk(name, false)
		if err != nil {
			return nil, err
		}
		man.Chunks = append(man.Chunks, res.Chunk)
	}
	// Meta is unknown without a manifest, so coverage can't be proven:
	// an assembled view is always Partial.
	man.Partial = true
	return man, nil
}

// Manifest returns the store's index. Callers must not mutate it.
func (s *Store) Manifest() *Manifest { return s.man }

// Partial reports whether the store is known to cover less than the grid.
func (s *Store) Partial() bool { return s.man.Partial }

// MeshHash returns the run-wide combined hash ("" when partial).
func (s *Store) MeshHash() string { return s.man.MeshHash }

// Record returns the index entry for a block key.
func (s *Store) Record(key string) (Record, bool) {
	loc, ok := s.index[key]
	return loc.rec, ok
}

// Payload reads, decodes, and digest-verifies one block's payload.
func (s *Store) Payload(key string) ([]byte, Record, error) {
	loc, ok := s.index[key]
	if !ok {
		return nil, Record{}, fmt.Errorf("meshstore: no block %q in store %s", key, s.dir)
	}
	f, err := s.file(loc.chunk)
	if err != nil {
		return nil, Record{}, err
	}
	if loc.rec.Length > int64(frameFixedLen+510+maxPayloadBytes) {
		return nil, Record{}, fmt.Errorf("meshstore: block %q frame length %d exceeds bound", key, loc.rec.Length)
	}
	frame := bufpool.Get(int(loc.rec.Length))
	defer bufpool.Put(frame)
	if _, err := f.ReadAt(frame, loc.rec.Offset); err != nil {
		return nil, Record{}, fmt.Errorf("meshstore: read block %q: %w", key, err)
	}
	h, keyLen, hashLen, err := parseFixed(frame)
	if err != nil {
		return nil, Record{}, err
	}
	if int64(frameFixedLen+keyLen+hashLen+h.EncLen) != loc.rec.Length {
		return nil, Record{}, fmt.Errorf("meshstore: block %q frame length mismatch", key)
	}
	h.Key = string(frame[frameFixedLen : frameFixedLen+keyLen])
	h.Hash = string(frame[frameFixedLen+keyLen : frameFixedLen+keyLen+hashLen])
	if h.Key != key {
		return nil, Record{}, fmt.Errorf("meshstore: frame at %d holds %q, index says %q", loc.rec.Offset, h.Key, key)
	}
	payload, err := decodePayload(h, frame[frameFixedLen+keyLen+hashLen:])
	if err != nil {
		return nil, Record{}, err
	}
	statBlocksRead.Add(1)
	statBytesRead.Add(loc.rec.Length)
	return payload, loc.rec, nil
}

func (s *Store) file(name string) (*os.File, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.files[name]; ok {
		return f, nil
	}
	f, err := os.Open(filepath.Join(s.dir, name))
	if err != nil {
		return nil, err
	}
	s.files[name] = f
	return f, nil
}

// Close releases the chunk file handles.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, f := range s.files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.files = make(map[string]*os.File)
	return first
}

// VerifyReport summarizes an offline integrity check of a store.
type VerifyReport struct {
	Format   int
	Blocks   int
	Bytes    int64
	Partial  bool
	MeshHash string
	Problems []string
}

// OK reports whether the store verified clean.
func (r VerifyReport) OK() bool { return len(r.Problems) == 0 }

// Verify checks a store offline, with no cluster: every chunk is walked
// frame by frame, every payload digest is recomputed, the manifest index
// is cross-checked against what is actually on disk, and the run-wide
// MeshHash is recomputed from the per-block canonical hashes and compared
// to the manifest's. A Partial store (mid-run, or never merged) verifies
// what exists; completeness problems are only reported against a manifest
// that claims completeness.
func Verify(dir string) (VerifyReport, error) {
	var rep VerifyReport
	man, err := readManifestFile(filepath.Join(dir, MergedManifestName))
	assembled := false
	if os.IsNotExist(err) {
		man, err = assembleFromChunks(dir)
		assembled = true
	}
	if err != nil {
		return rep, err
	}
	rep.Format = man.Format
	rep.Partial = man.Partial
	rep.MeshHash = man.MeshHash

	for _, c := range man.Chunks {
		res, err := ScanChunk(filepath.Join(dir, c.Name), true)
		if err != nil {
			rep.Problems = append(rep.Problems, fmt.Sprintf("chunk %s: %v", c.Name, err))
			continue
		}
		rep.Problems = append(rep.Problems, res.Problems...)
		rep.Blocks += len(res.Chunk.Records)
		rep.Bytes += res.Chunk.Bytes
		if res.Partial {
			if assembled || man.Partial {
				rep.Partial = true
			} else {
				rep.Problems = append(rep.Problems,
					fmt.Sprintf("chunk %s: %d trailing bytes beyond the last whole frame in a store marked complete", c.Name, res.TailBytes))
			}
		}
		// The manifest index must describe exactly the frames on disk.
		if len(res.Chunk.Records) != len(c.Records) {
			rep.Problems = append(rep.Problems,
				fmt.Sprintf("chunk %s: %d frames on disk, manifest lists %d", c.Name, len(res.Chunk.Records), len(c.Records)))
			continue
		}
		for i, got := range res.Chunk.Records {
			if got != c.Records[i] {
				rep.Problems = append(rep.Problems,
					fmt.Sprintf("chunk %s frame %d: disk %+v != manifest %+v", c.Name, i, got, c.Records[i]))
			}
		}
	}
	if !man.Partial {
		if ok, probs := man.complete(); !ok {
			rep.Problems = append(rep.Problems, "store marked complete but does not cover the grid")
			rep.Problems = append(rep.Problems, probs...)
		}
		if want := CombineHash(man.hashRecords()); man.MeshHash != want {
			rep.Problems = append(rep.Problems,
				fmt.Sprintf("manifest MeshHash %s != recombined %s", man.MeshHash, want))
		}
	}
	if len(rep.Problems) > 0 {
		statVerifyErrors.Add(int64(len(rep.Problems)))
	}
	return rep, nil
}

// EmitRestore traces one restored block (ID: packed coordinates, Arg: raw
// payload bytes). The restore path lives in meshgen, which owns no trace
// kinds; routing the emit through here keeps the meshstore.* observables
// in one place.
func EmitRestore(t *obs.Tracer, i, j int, rawBytes int) {
	statBlocksRestored.Add(1)
	t.Emit(obs.KindMeshRestore, packBlockID(i, j), int64(rawBytes))
}

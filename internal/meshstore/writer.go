package meshstore

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"mrts/internal/bufpool"
	"mrts/internal/obs"
)

// WriterConfig configures one node's chunk writer.
type WriterConfig struct {
	// Dir is the store directory (created if missing).
	Dir string
	// Writer is this node's writer index; it only names the chunk file and
	// carries no placement meaning.
	Writer int
	// Meta is recorded in the per-writer manifest at Finalize. Every
	// writer of a run must pass the same value.
	Meta Meta
	// Compress runs payloads through the flate framing when it shrinks
	// them (the tier-0.5 rule: raw fallback when it doesn't).
	Compress bool
	// Tracer, when non-nil, receives a mesh.export event per appended
	// frame (ID: the packed block coordinates, Arg: the frame bytes).
	Tracer *obs.Tracer
}

// Writer appends framed block records to one chunk file. It is safe for
// concurrent use: export rides runtime handler workers, so several blocks
// of one node can commit at once. Frames become durable in append order,
// which is commit order — a reader racing the writer sees a clean prefix.
type Writer struct {
	cfg   WriterConfig
	mu    sync.Mutex
	f     *os.File
	off   int64
	chunk Chunk
	err   error // sticky: first failure poisons the writer
	done  bool
}

// NewWriter creates (or truncates) this writer's chunk file. Truncation is
// deliberate: a relaunched node re-exports its whole partition, discarding
// whatever half-written frames its previous incarnation left behind.
func NewWriter(cfg WriterConfig) (*Writer, error) {
	if cfg.Writer < 0 {
		return nil, fmt.Errorf("meshstore: negative writer index %d", cfg.Writer)
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("meshstore: %w", err)
	}
	name := chunkName(cfg.Writer)
	f, err := os.Create(filepath.Join(cfg.Dir, name))
	if err != nil {
		return nil, fmt.Errorf("meshstore: %w", err)
	}
	// A fresh export invalidates this writer's previous index, if any.
	os.Remove(filepath.Join(cfg.Dir, manifestName(cfg.Writer)))
	return &Writer{
		cfg:   cfg,
		f:     f,
		chunk: Chunk{Name: name, Writer: cfg.Writer},
	}, nil
}

// Append frames one block and writes it to the chunk. hash is the block's
// canonical mesh digest (as reported in dump lines); payload is the
// block's encoded state, opaque to the store.
func (w *Writer) Append(key string, i, j int, elements int32, hash string, payload []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.done {
		return w.fail(fmt.Errorf("meshstore: append to finalized writer %d", w.cfg.Writer))
	}
	if len(key) > 255 || len(hash) > 255 {
		return w.fail(fmt.Errorf("meshstore: key/hash too long for block %q", key))
	}
	if len(payload) > maxPayloadBytes {
		return w.fail(fmt.Errorf("meshstore: block %q payload %d exceeds bound %d", key, len(payload), maxPayloadBytes))
	}
	if i < 0 || j < 0 {
		return w.fail(fmt.Errorf("meshstore: negative block coordinates (%d,%d)", i, j))
	}
	sum := sha256.Sum256(payload)

	bw := bufpool.GetWriter(frameFixedLen + len(key) + len(hash) + len(payload))
	defer bufpool.PutWriter(bw)
	var hdr [frameFixedLen]byte
	copy(hdr[0:4], frameMagic)
	hdr[4] = codecRaw
	hdr[5] = byte(len(key))
	hdr[6] = byte(len(hash))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(i))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(j))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(elements))
	binary.LittleEndian.PutUint32(hdr[20:], uint32(len(payload)))
	copy(hdr[28:60], sum[:])
	bw.Write(hdr[:])
	bw.Write([]byte(key))
	bw.Write([]byte(hash))

	payloadOff := bw.Len()
	codec := byte(codecRaw)
	if w.cfg.Compress && len(payload) >= compressMin {
		fw := getFlateWriter(bw)
		_, werr := fw.Write(payload)
		if cerr := fw.Close(); werr == nil {
			werr = cerr
		}
		putFlateWriter(fw)
		if werr == nil && bw.Len()-payloadOff < len(payload) {
			codec = codecFlate
		} else {
			// Flate failed or didn't shrink it: keep the header and
			// sections, drop the compressed attempt, store raw.
			bw.Truncate(payloadOff)
		}
	}
	if codec == codecRaw {
		bw.Write(payload)
	}
	frame := bw.Bytes()
	frame[4] = codec
	binary.LittleEndian.PutUint32(frame[24:], uint32(bw.Len()-payloadOff))

	if _, err := w.f.Write(frame); err != nil {
		return w.fail(fmt.Errorf("meshstore: append block %q: %w", key, err))
	}
	w.chunk.Records = append(w.chunk.Records, Record{
		Key:        key,
		I:          i,
		J:          j,
		Elements:   elements,
		Hash:       hash,
		PayloadSHA: hex.EncodeToString(sum[:]),
		Offset:     w.off,
		Length:     int64(len(frame)),
		RawLen:     len(payload),
	})
	w.off += int64(len(frame))
	w.chunk.Bytes = w.off
	statBlocksWritten.Add(1)
	statBytesWritten.Add(int64(len(frame)))
	statRawBytes.Add(int64(len(payload)))
	w.cfg.Tracer.Emit(obs.KindMeshExport, packBlockID(i, j), int64(len(frame)))
	return nil
}

func (w *Writer) fail(err error) error {
	if w.err == nil {
		w.err = err
	}
	return err
}

// Blocks returns the number of frames appended so far.
func (w *Writer) Blocks() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.chunk.Records)
}

// Bytes returns the chunk size so far.
func (w *Writer) Bytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.off
}

// Err returns the sticky error, if any.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Finalize syncs and closes the chunk and writes this writer's manifest
// atomically. The per-writer manifest indexes only this chunk; a
// coordinator folds all of them into MANIFEST.json with MergeManifests.
func (w *Writer) Finalize() (*Manifest, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return nil, w.err
	}
	if w.done {
		return nil, w.fail(fmt.Errorf("meshstore: writer %d finalized twice", w.cfg.Writer))
	}
	w.done = true
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return nil, w.fail(fmt.Errorf("meshstore: sync chunk: %w", err))
	}
	if err := w.f.Close(); err != nil {
		return nil, w.fail(fmt.Errorf("meshstore: close chunk: %w", err))
	}
	m := &Manifest{
		Format: FormatVersion,
		Meta:   w.cfg.Meta,
		Chunks: []Chunk{w.chunk},
	}
	m.seal()
	path := filepath.Join(w.cfg.Dir, manifestName(w.cfg.Writer))
	if err := writeManifestFile(path, m); err != nil {
		return nil, w.fail(fmt.Errorf("meshstore: write manifest: %w", err))
	}
	return m, nil
}

// Close abandons the writer without a manifest, leaving whatever frames
// were appended on disk (they remain readable as a partial chunk).
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.done {
		return nil
	}
	w.done = true
	return w.f.Close()
}

// packBlockID packs grid coordinates into a trace event ID.
func packBlockID(i, j int) uint64 { return uint64(j)<<32 | uint64(uint32(i)) }

package meshstore

import (
	"sync/atomic"

	"mrts/internal/obs"
)

// Package-wide counters for the export/restore data path. They are
// process-global (like the bufpool counters): every writer and store in
// the process folds into one view of bytes at rest and bytes moved.
var (
	statBlocksWritten  atomic.Int64
	statBytesWritten   atomic.Int64
	statRawBytes       atomic.Int64
	statBlocksRead     atomic.Int64
	statBytesRead      atomic.Int64
	statBlocksRestored atomic.Int64
	statVerifyErrors   atomic.Int64
)

// Stats is a snapshot of the package counters.
type Stats struct {
	BlocksWritten  int64 // frames appended across all writers
	BytesWritten   int64 // chunk bytes written (framed, post-compression)
	RawBytes       int64 // payload bytes before compression
	BlocksRead     int64 // payloads decoded through Store.Payload
	BytesRead      int64 // frame bytes read for those payloads
	BlocksRestored int64 // blocks re-created into a runtime from a store
	VerifyErrors   int64 // problems found by Verify
}

// Snapshot returns the current package counters.
func Snapshot() Stats {
	return Stats{
		BlocksWritten:  statBlocksWritten.Load(),
		BytesWritten:   statBytesWritten.Load(),
		RawBytes:       statRawBytes.Load(),
		BlocksRead:     statBlocksRead.Load(),
		BytesRead:      statBytesRead.Load(),
		BlocksRestored: statBlocksRestored.Load(),
		VerifyErrors:   statVerifyErrors.Load(),
	}
}

// ResetStats zeroes the package counters (bench cells measure deltas).
func ResetStats() {
	statBlocksWritten.Store(0)
	statBytesWritten.Store(0)
	statRawBytes.Store(0)
	statBlocksRead.Store(0)
	statBytesRead.Store(0)
	statBlocksRestored.Store(0)
	statVerifyErrors.Store(0)
}

// RegisterMetrics exposes the package counters as meshstore.* gauges on a
// metrics registry.
func RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Gauge("meshstore.blocks_written", func() float64 { return float64(statBlocksWritten.Load()) })
	reg.Gauge("meshstore.bytes_written", func() float64 { return float64(statBytesWritten.Load()) })
	reg.Gauge("meshstore.raw_bytes", func() float64 { return float64(statRawBytes.Load()) })
	reg.Gauge("meshstore.blocks_read", func() float64 { return float64(statBlocksRead.Load()) })
	reg.Gauge("meshstore.bytes_read", func() float64 { return float64(statBytesRead.Load()) })
	reg.Gauge("meshstore.blocks_restored", func() float64 { return float64(statBlocksRestored.Load()) })
	reg.Gauge("meshstore.verify_errors", func() float64 { return float64(statVerifyErrors.Load()) })
}

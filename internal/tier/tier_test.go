package tier

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"mrts/internal/storage"
)

func newTiered(t *testing.T, cfg Config) *Store {
	t.Helper()
	if cfg.Slow == nil {
		cfg.Slow = storage.NewMem()
	}
	if cfg.Fast == nil && cfg.Capacity != 0 {
		cfg.Fast = storage.NewMem()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func checkClean(t *testing.T, s *Store) {
	t.Helper()
	s.WaitIdle()
	if msgs := s.CheckInvariants(true); len(msgs) > 0 {
		t.Fatalf("invariants violated: %v", msgs)
	}
}

func blob(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)
	}
	return b
}

func TestPutGetFastTier(t *testing.T) {
	s := newTiered(t, Config{Capacity: -1})
	if err := s.Put("a", blob(100)); err != nil {
		t.Fatalf("put: %v", err)
	}
	got, err := s.Get("a")
	if err != nil || len(got) != 100 {
		t.Fatalf("get: %v (%d bytes)", err, len(got))
	}
	st := s.Snapshot()
	if st.FastPuts != 1 || st.FastHits != 1 || st.Spills != 0 {
		t.Fatalf("want 1 fast put + 1 fast hit, got %+v", st)
	}
	if st.FastBytes != 100 || st.FastBlobs != 1 {
		t.Fatalf("residency: %+v", st)
	}
	checkClean(t, s)
}

func TestCapacityZeroIsPureDisk(t *testing.T) {
	slow := storage.NewMem()
	s := newTiered(t, Config{Slow: slow, Capacity: 0})
	for i := 0; i < 5; i++ {
		if err := s.Put(storage.Key(fmt.Sprintf("k%d", i)), blob(50)); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	if _, err := s.Get("k3"); err != nil {
		t.Fatalf("get: %v", err)
	}
	st := s.Snapshot()
	if st.FastPuts != 0 || st.Spills != 5 || st.SlowHits != 1 || st.FastBytes != 0 {
		t.Fatalf("pure-disk stats: %+v", st)
	}
	if !slow.Has("k3") {
		t.Fatal("blob not on the slow tier")
	}
	checkClean(t, s)
}

func TestSpillWhenFullNeverErrors(t *testing.T) {
	s := newTiered(t, Config{Capacity: 300, PromoteAfter: -1})
	// Three 100-byte blobs fill the lease exactly; the fourth must spill,
	// not fail.
	for i := 0; i < 4; i++ {
		if err := s.Put(storage.Key(fmt.Sprintf("k%d", i)), blob(100)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	st := s.Snapshot()
	if st.Spills == 0 {
		t.Fatalf("want at least one spill, got %+v", st)
	}
	if st.FastBytes > 300 {
		t.Fatalf("lease exceeded: %+v", st)
	}
	for i := 0; i < 4; i++ {
		if got, err := s.Get(storage.Key(fmt.Sprintf("k%d", i))); err != nil || len(got) != 100 {
			t.Fatalf("get %d: %v (%d bytes)", i, err, len(got))
		}
	}
	checkClean(t, s)
}

func TestAdmitMax(t *testing.T) {
	s := newTiered(t, Config{Capacity: 10_000, AdmitMax: 100, PromoteAfter: -1})
	if err := s.Put("small", blob(100)); err != nil {
		t.Fatalf("put small: %v", err)
	}
	if err := s.Put("big", blob(101)); err != nil {
		t.Fatalf("put big: %v", err)
	}
	st := s.Snapshot()
	if st.FastPuts != 1 || st.Spills != 1 {
		t.Fatalf("AdmitMax not enforced: %+v", st)
	}
	checkClean(t, s)
}

func TestHeatAdmissionAboveHighWater(t *testing.T) {
	// Capacity 1000, high water 900. Fill to 850, then write one cold key
	// and one warm key of 100 bytes each: the warm one is admitted (it was
	// seen before), the cold one spills.
	s := newTiered(t, Config{Capacity: 1000, HighWater: 0.9, LowWater: 0.1, PromoteAfter: -1})
	for i := 0; i < 17; i++ {
		if err := s.Put(storage.Key(fmt.Sprintf("fill%d", i)), blob(50)); err != nil {
			t.Fatal(err)
		}
	}
	// Warm up "warm" while there is still room below the mark.
	if err := s.Put("warm", blob(10)); err != nil {
		t.Fatal(err)
	}
	base := s.Snapshot()
	if err := s.Put("warm", blob(100)); err != nil { // 860+100 > 900, but warm
		t.Fatal(err)
	}
	if err := s.Put("cold", blob(100)); err != nil { // cold first-timer: spill
		t.Fatal(err)
	}
	st := s.Snapshot()
	if st.FastPuts != base.FastPuts+1 {
		t.Fatalf("warm key not admitted: base %+v now %+v", base, st)
	}
	if st.Spills != base.Spills+1 {
		t.Fatalf("cold key not spilled: base %+v now %+v", base, st)
	}
	s.WaitIdle() // the warm admit crossed high water; let demotion settle
	if msgs := s.CheckInvariants(true); len(msgs) > 0 {
		t.Fatalf("invariants: %v", msgs)
	}
}

func TestDemotionToLowWatermark(t *testing.T) {
	slow := storage.NewMem()
	s := newTiered(t, Config{Slow: slow, Capacity: 1000, HighWater: 0.9, LowWater: 0.5, PromoteAfter: -1})
	// 9 × 100 bytes = 900 ≤ high mark, no demotion yet; the 10th write
	// spills (projected 1000 > 900 and cold), so rewrite a warm key bigger
	// to cross the mark.
	for i := 0; i < 9; i++ {
		if err := s.Put(storage.Key(fmt.Sprintf("k%d", i)), blob(100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put("k0", blob(150)); err != nil { // 950 > 900: triggers demotion
		t.Fatal(err)
	}
	s.WaitIdle()
	st := s.Snapshot()
	if st.Demotions == 0 {
		t.Fatalf("no demotions ran: %+v", st)
	}
	if st.FastBytes > 500 {
		t.Fatalf("demotion stopped above low watermark: %+v", st)
	}
	// Every blob still readable, from whichever tier it now occupies.
	for i := 0; i < 9; i++ {
		if _, err := s.Get(storage.Key(fmt.Sprintf("k%d", i))); err != nil {
			t.Fatalf("get k%d after demotion: %v", i, err)
		}
	}
	checkClean(t, s)
}

func TestPromotionAfterRepeatedMisses(t *testing.T) {
	s := newTiered(t, Config{Capacity: 10_000, PromoteAfter: 2})
	// Plant the blob on the slow tier by writing past AdmitMax... simpler:
	// use a cold write above high water. Simplest: capacity small at first
	// is not reconfigurable, so write through a spill: blob bigger than an
	// AdmitMax-free lease cannot spill here. Plant directly instead.
	if err := s.slow.Put("cold", blob(200)); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	s.index["cold"] = &entry{size: 200, place: inSlow}
	s.mu.Unlock()

	for i := 0; i < 2; i++ {
		if _, err := s.Get("cold"); err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
	}
	s.WaitIdle()
	st := s.Snapshot()
	if st.Promotions != 1 {
		t.Fatalf("want 1 promotion, got %+v", st)
	}
	if _, err := s.Get("cold"); err != nil {
		t.Fatal(err)
	}
	if st := s.Snapshot(); st.FastHits == 0 {
		t.Fatalf("promoted blob not served by tier 0: %+v", st)
	}
	checkClean(t, s)
}

func TestFastPutErrorSpills(t *testing.T) {
	fast := storage.NewFault(storage.NewMem(), storage.FaultConfig{FailFirstPuts: 1})
	s := newTiered(t, Config{Fast: fast, Capacity: -1, PromoteAfter: -1})
	if err := s.Put("a", blob(100)); err != nil {
		t.Fatalf("put should spill on a fast-tier fault, got %v", err)
	}
	st := s.Snapshot()
	if st.FastPutErrors != 1 || st.Spills != 1 {
		t.Fatalf("fault not absorbed by spill: %+v", st)
	}
	if got, err := s.Get("a"); err != nil || len(got) != 100 {
		t.Fatalf("get after spill: %v", err)
	}
	checkClean(t, s)
}

func TestFastReadErrorPropagatesThenRecovers(t *testing.T) {
	fast := storage.NewFault(storage.NewMem(), storage.FaultConfig{FailFirstGets: 1})
	s := newTiered(t, Config{Fast: fast, Capacity: -1})
	if err := s.Put("a", blob(100)); err != nil {
		t.Fatal(err)
	}
	// First read faults; the error surfaces so the caller's retry policy
	// re-drives the tiered Get, which then succeeds.
	if _, err := s.Get("a"); err == nil {
		t.Fatal("want the injected fast-read fault to propagate")
	} else if !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("unexpected error: %v", err)
	}
	if _, err := s.Get("a"); err != nil {
		t.Fatalf("retry re-drive failed: %v", err)
	}
	if st := s.Snapshot(); st.FastReadErrors != 1 || st.FastHits != 1 {
		t.Fatalf("stats: %+v", st)
	}
	checkClean(t, s)
}

func TestOverwriteMovesBetweenTiers(t *testing.T) {
	slow := storage.NewMem()
	fast := storage.NewMem()
	s := newTiered(t, Config{Fast: fast, Slow: slow, Capacity: 200, AdmitMax: 100, PromoteAfter: -1})
	if err := s.Put("a", blob(150)); err != nil { // > AdmitMax: slow
		t.Fatal(err)
	}
	if !slow.Has("a") || fast.Has("a") {
		t.Fatal("want a on the slow tier only")
	}
	if err := s.Put("a", blob(80)); err != nil { // fits now: fast
		t.Fatal(err)
	}
	if !fast.Has("a") || slow.Has("a") {
		t.Fatal("overwrite must move the blob to tier 0 and scrub tier 1")
	}
	if err := s.Put("a", blob(150)); err != nil { // too big again: back to slow
		t.Fatal(err)
	}
	if !slow.Has("a") || fast.Has("a") {
		t.Fatal("overwrite must move the blob back to tier 1 and scrub tier 0")
	}
	checkClean(t, s)
}

func TestDeleteScrubsBothTiers(t *testing.T) {
	slow := storage.NewMem()
	fast := storage.NewMem()
	s := newTiered(t, Config{Fast: fast, Slow: slow, Capacity: -1})
	if err := s.Put("f", blob(10)); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("f"); err != nil {
		t.Fatal(err)
	}
	if s.Has("f") || fast.Has("f") {
		t.Fatal("delete left a tier-0 copy")
	}
	if _, err := s.Get("f"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	if st := s.Snapshot(); st.FastBytes != 0 {
		t.Fatalf("delete leaked lease bytes: %+v", st)
	}
	checkClean(t, s)
}

func TestGetMissingKey(t *testing.T) {
	s := newTiered(t, Config{Capacity: -1})
	if _, err := s.Get("nope"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	if s.Has("nope") {
		t.Fatal("Has on a missing key")
	}
}

func TestClosedStore(t *testing.T) {
	s := newTiered(t, Config{Capacity: -1})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", blob(1)); !errors.Is(err, storage.ErrClosed) {
		t.Fatalf("put after close: %v", err)
	}
	if _, err := s.Get("a"); !errors.Is(err, storage.ErrClosed) {
		t.Fatalf("get after close: %v", err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

// TestConcurrentHammer drives interleaved Put/Get/Delete from many
// goroutines over overlapping keys while a spectator continuously asserts
// the lease and accounting invariants. Run under -race in CI.
func TestConcurrentHammer(t *testing.T) {
	const (
		workers = 8
		rounds  = 200
		keys    = 16
		lease   = 2_000
	)
	s := newTiered(t, Config{Capacity: lease, HighWater: 0.8, LowWater: 0.4, PromoteAfter: 2})

	stop := make(chan struct{})
	var spectator sync.WaitGroup
	spectator.Add(1)
	go func() {
		defer spectator.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if msgs := s.CheckInvariants(false); len(msgs) > 0 {
				t.Errorf("mid-traffic invariants: %v", msgs)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				key := storage.Key(fmt.Sprintf("k%d", (w*7+i)%keys))
				switch i % 5 {
				case 0, 1:
					if err := s.Put(key, blob(50+(i%13)*20)); err != nil {
						t.Errorf("put %q: %v", key, err)
						return
					}
				case 2, 3:
					if _, err := s.Get(key); err != nil &&
						!errors.Is(err, storage.ErrNotFound) {
						t.Errorf("get %q: %v", key, err)
						return
					}
				default:
					if err := s.Delete(key); err != nil &&
						!errors.Is(err, storage.ErrNotFound) {
						t.Errorf("delete %q: %v", key, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	spectator.Wait()
	checkClean(t, s)
	if st := s.Snapshot(); st.FastBytes > lease {
		t.Fatalf("lease exceeded at rest: %+v", st)
	}
}

// TestPutOnPromotingSpillReleasesReservation overwrites a mid-promotion key
// with a blob admission refuses: the spill succeeds and must release the
// orphaned promotion reservation — the gen bump means the promotion callback
// never will, and a leaked charge shrinks the lease forever.
func TestPutOnPromotingSpillReleasesReservation(t *testing.T) {
	slow := storage.NewMem()
	s := newTiered(t, Config{Slow: slow, Capacity: 1000, AdmitMax: 100, PromoteAfter: -1})
	// Plant a key mid-promotion exactly as reservePromoteLocked leaves it
	// while the prefetch load is in flight: slow copy authoritative, lease
	// reservation charged.
	if err := s.slow.Put("p", blob(80)); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	s.index["p"] = &entry{size: 80, charged: 80, place: promoting}
	s.fastBytes += 80
	s.mu.Unlock()

	if err := s.Put("p", blob(150)); err != nil { // > AdmitMax: spills
		t.Fatalf("put: %v", err)
	}
	if st := s.Snapshot(); st.FastBytes != 0 {
		t.Fatalf("promotion reservation leaked into the lease: %+v", st)
	}
	if got, err := s.Get("p"); err != nil || len(got) != 150 {
		t.Fatalf("get: %v (%d bytes)", err, len(got))
	}
	checkClean(t, s)
}

// TestPutFailingBothTiersOnPromotingRevertsToSlow fails a Put of a
// mid-promotion key on both tiers: the entry must revert to its (still
// authoritative) slow copy and drop the reservation, not stay `promoting`
// forever with the charge held.
func TestPutFailingBothTiersOnPromotingRevertsToSlow(t *testing.T) {
	inner := storage.NewMem()
	slow := storage.NewFault(inner, storage.FaultConfig{FailFirstPuts: 1})
	s := newTiered(t, Config{Slow: slow, Capacity: 1000, AdmitMax: 100, PromoteAfter: -1})
	if err := inner.Put("p", blob(80)); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	s.index["p"] = &entry{size: 80, charged: 80, place: promoting}
	s.fastBytes += 80
	s.mu.Unlock()

	// > AdmitMax refuses tier 0 and the injected fault fails the spill: the
	// Put errors out, the old slow copy stays the truth.
	if err := s.Put("p", blob(150)); err == nil {
		t.Fatal("want the double-fault put to fail")
	}
	s.mu.Lock()
	ent := s.index["p"]
	if ent.place != inSlow || ent.charged != 0 || s.fastBytes != 0 {
		s.mu.Unlock()
		t.Fatalf("entry not reconciled: place=%v charged=%d fastBytes=%d",
			ent.place, ent.charged, s.fastBytes)
	}
	s.mu.Unlock()
	if got, err := s.Get("p"); err != nil || len(got) != 80 {
		t.Fatalf("old slow copy unreadable: %v (%d bytes)", err, len(got))
	}
	checkClean(t, s)
}

// nilOnEmpty returns a nil (not empty) slice for zero-length blobs, as some
// stores legitimately do; the demotion pipeline must not mistake that for an
// aborted move and wedge the key.
type nilOnEmpty struct{ storage.Store }

func (n nilOnEmpty) Get(k storage.Key) ([]byte, error) {
	d, err := n.Store.Get(k)
	if err == nil && len(d) == 0 {
		return nil, nil
	}
	return d, err
}

func TestDemoteZeroLengthBlob(t *testing.T) {
	s := newTiered(t, Config{
		Fast: nilOnEmpty{storage.NewMem()}, Slow: storage.NewMem(),
		Capacity: 1000, HighWater: 0.9, LowWater: 0.1, PromoteAfter: -1,
	})
	if err := s.Put("z", nil); err != nil { // zero-length, coldest
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		if err := s.Put(storage.Key(fmt.Sprintf("k%d", i)), blob(100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put("k0", blob(150)); err != nil { // crosses high water
		t.Fatal(err)
	}
	// Wedges here if the done hook mistakes the nil blob for an abort.
	s.WaitIdle()
	if !s.slow.Has("z") {
		t.Fatal("zero-length blob not demoted to tier 1")
	}
	checkClean(t, s)
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("want error without a Slow store")
	}
	if _, err := New(Config{Slow: storage.NewMem(), Capacity: 100}); err == nil {
		t.Fatal("want error when Capacity != 0 without a Fast store")
	}
	s, err := New(Config{Slow: storage.NewMem(), Capacity: 0})
	if err != nil {
		t.Fatalf("capacity-0 store must not need a fast tier: %v", err)
	}
	_ = s.Close()
}

func TestHitRatio(t *testing.T) {
	var st Stats
	if st.HitRatio() != 0 {
		t.Fatal("empty ratio")
	}
	st.FastHits, st.SlowHits = 3, 1
	if got := st.HitRatio(); got != 0.75 {
		t.Fatalf("want 0.75, got %v", got)
	}
}

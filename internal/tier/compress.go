package tier

// Tier 0.5: transparent compression between the fast tier and the disk
// backstop. Every blob headed for tier 1 is framed and (when worthwhile)
// flate-compressed on the way down, and a byte-capped RAM cache of the
// *compressed* frames sits in front of the disk — compressed residency buys
// roughly Ratio× more cache coverage per byte than caching raw blobs would.
//
// The layer is a storage.Store wrapper installed around Config.Slow, so the
// whole tier-1 traffic (spills, demotions, demand reads, promotion reads)
// flows through it without the placement policy knowing. It implements the
// pooled BufGetter/BufPutter paths: frames are built in pooled writers,
// decompression lands in pooled buffers, and ownership transfers follow the
// rules in internal/storage/bufio.go.
//
// Frame format: [magic 0xC7][codec id][u32 rawLen][payload]. Codec 0 stores
// the payload raw (too small, or incompressible — the frame then costs 6
// bytes over raw storage); codec 1 is DEFLATE. rawLen is bounded on decode so
// one corrupt frame cannot demand a multi-gigabyte allocation.

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"sync"

	"mrts/internal/bufpool"
	"mrts/internal/clock"
	"mrts/internal/storage"
)

const (
	frameMagic     = 0xC7
	codecRaw       = 0
	codecFlate     = 1
	frameHdrLen    = 6
	maxFrameRaw    = 1 << 30 // decode bound on the claimed raw length
	defaultMinSize = 512
)

// CompressConfig configures the tier-0.5 compression layer.
type CompressConfig struct {
	// CacheBytes caps the RAM cache of compressed frames. 0 disables the
	// cache (compression only, no tier-0.5 residency).
	CacheBytes int64
	// MinSize is the blob size below which compression is not attempted
	// (small blobs are framed raw). Default 512.
	MinSize int
	// Level is the DEFLATE level (flate.BestSpeed..flate.BestCompression).
	// 0 means flate.BestSpeed — the swap path wants cheap cycles, not
	// maximal ratio.
	Level int
	// AdmitHeat is how many touches a key needs before its frame is worth
	// cache space (the same warmth idea as the tier-0 admission policy).
	// Default 2: first-timers stream through, repeat visitors are cached.
	AdmitHeat int
}

func (c CompressConfig) withDefaults() CompressConfig {
	if c.MinSize <= 0 {
		c.MinSize = defaultMinSize
	}
	if c.Level < flate.BestSpeed || c.Level > flate.BestCompression {
		c.Level = flate.BestSpeed
	}
	if c.AdmitHeat <= 0 {
		c.AdmitHeat = 2
	}
	return c
}

// CompressStats is a point-in-time snapshot of tier-0.5 activity.
type CompressStats struct {
	// RawBytes / StoredBytes total the pre- and post-framing sizes of every
	// write through the layer; their quotient is the achieved ratio.
	RawBytes, StoredBytes uint64
	// Incompressible counts writes stored raw because DEFLATE did not shrink
	// them (MinSize skips count here too).
	Incompressible uint64
	// CacheHits / CacheMisses count reads served from / past the frame cache.
	CacheHits, CacheMisses uint64
	// CacheBytes / CacheBlobs are the current cache residency.
	CacheBytes int64
	CacheBlobs int
	// EncodeNanos / DecodeNanos total the codec time, measured on the
	// injected clock (zero under a virtual clock).
	EncodeNanos, DecodeNanos int64
}

// Ratio returns RawBytes/StoredBytes (1 when nothing was written).
func (s CompressStats) Ratio() float64 {
	if s.StoredBytes == 0 {
		return 1
	}
	return float64(s.RawBytes) / float64(s.StoredBytes)
}

// CacheHitRatio returns the fraction of reads served by the frame cache.
func (s CompressStats) CacheHitRatio() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// Add accumulates other into s (counters and gauges sum).
func (s *CompressStats) Add(other CompressStats) {
	s.RawBytes += other.RawBytes
	s.StoredBytes += other.StoredBytes
	s.Incompressible += other.Incompressible
	s.CacheHits += other.CacheHits
	s.CacheMisses += other.CacheMisses
	s.CacheBytes += other.CacheBytes
	s.CacheBlobs += other.CacheBlobs
	s.EncodeNanos += other.EncodeNanos
	s.DecodeNanos += other.DecodeNanos
}

// flate writer/reader pools: Reset-able codec state is expensive to build
// (the flate writer allocates ~700KB of window state), so it is shared
// process-wide like bufpool's writer pool.
var (
	flateWriterPools [flate.BestCompression + 1]sync.Pool // index = level (1..9)
	flateReaderPool  = sync.Pool{New: func() any { return flate.NewReader(nil) }}
)

func getFlateWriter(level int, dst io.Writer) *flate.Writer {
	if w, _ := flateWriterPools[level].Get().(*flate.Writer); w != nil {
		w.Reset(dst)
		return w
	}
	w, _ := flate.NewWriter(dst, level)
	return w
}

func putFlateWriter(level int, w *flate.Writer) { flateWriterPools[level].Put(w) }

// centry is one key's cache record: the compressed frame (nil for a pure
// heat ghost) plus the recency/warmth fields the admission policy reads.
type centry struct {
	frame []byte // cached compressed frame (pooled; nil = ghost)
	seq   uint64 // last-touch sequence (LRU order)
	heat  uint64 // lifetime touches
}

// compressedStore is the tier-0.5 layer. It wraps the slow store; see the
// file comment for the data path.
type compressedStore struct {
	inner storage.Store
	cfg   CompressConfig
	clk   clock.Clock

	mu    sync.Mutex
	cache map[storage.Key]*centry
	bytes int64 // sum of cached frame lengths
	seq   uint64
	stats CompressStats
}

// newCompressedStore wraps inner in the compression layer.
func newCompressedStore(inner storage.Store, cfg CompressConfig, clk clock.Clock) *compressedStore {
	return &compressedStore{
		inner: inner,
		cfg:   cfg.withDefaults(),
		clk:   clock.Or(clk),
		cache: make(map[storage.Key]*centry),
	}
}

// encodeFrame builds the framed (maybe compressed) representation of data in
// a pooled buffer. The caller owns the result.
func (s *compressedStore) encodeFrame(data []byte) []byte {
	w := bufpool.GetWriter(frameHdrLen + len(data))
	w.WriteByte(frameMagic)
	w.WriteByte(codecRaw) // patched below when flate wins
	w.WriteByte(byte(len(data)))
	w.WriteByte(byte(len(data) >> 8))
	w.WriteByte(byte(len(data) >> 16))
	w.WriteByte(byte(len(data) >> 24))

	compressed := false
	if len(data) >= s.cfg.MinSize {
		start := s.clk.Now()
		fw := getFlateWriter(s.cfg.Level, w)
		_, werr := fw.Write(data)
		cerr := fw.Close()
		putFlateWriter(s.cfg.Level, fw)
		s.mu.Lock()
		s.stats.EncodeNanos += s.clk.Since(start).Nanoseconds()
		s.mu.Unlock()
		if werr == nil && cerr == nil && w.Len() < frameHdrLen+len(data) {
			compressed = true
		}
	}
	if !compressed {
		// Too small, incompressible, or a codec error: store raw. The
		// writer may hold a failed flate attempt; rewind to the header.
		w.Truncate(frameHdrLen)
		w.Write(data)
		frame := w.Detach()
		bufpool.PutWriter(w)
		return frame
	}
	frame := w.Detach()
	bufpool.PutWriter(w)
	frame[1] = codecFlate
	return frame
}

// decodeFrame expands a frame into a pooled buffer the caller owns.
func (s *compressedStore) decodeFrame(frame []byte) ([]byte, error) {
	if len(frame) < frameHdrLen || frame[0] != frameMagic {
		return nil, fmt.Errorf("tier: bad compression frame header")
	}
	rawLen := int(frame[2]) | int(frame[3])<<8 | int(frame[4])<<16 | int(frame[5])<<24
	if rawLen < 0 || rawLen > maxFrameRaw {
		return nil, fmt.Errorf("tier: frame claims %d raw bytes, limit %d (corrupt?)", rawLen, maxFrameRaw)
	}
	payload := frame[frameHdrLen:]
	switch frame[1] {
	case codecRaw:
		if len(payload) != rawLen {
			return nil, fmt.Errorf("tier: raw frame length %d, header says %d", len(payload), rawLen)
		}
		return bufpool.Clone(payload), nil
	case codecFlate:
		out := bufpool.Get(rawLen)
		start := s.clk.Now()
		fr := flateReaderPool.Get().(io.ReadCloser)
		fr.(flate.Resetter).Reset(bytes.NewReader(payload), nil)
		_, err := io.ReadFull(fr, out)
		if err == nil {
			// The stream must end exactly at rawLen.
			var one [1]byte
			if n, _ := fr.Read(one[:]); n != 0 {
				err = fmt.Errorf("tier: frame decompresses past its %d-byte header length", rawLen)
			}
		}
		fr.Close()
		flateReaderPool.Put(fr)
		s.mu.Lock()
		s.stats.DecodeNanos += s.clk.Since(start).Nanoseconds()
		s.mu.Unlock()
		if err != nil {
			bufpool.Put(out)
			return nil, fmt.Errorf("tier: frame decompression: %w", err)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("tier: unknown frame codec %d", frame[1])
	}
}

// touchLocked records an access and returns whether the key is warm enough
// for cache admission.
func (s *compressedStore) touchLocked(ent *centry) bool {
	s.seq++
	ent.seq = s.seq
	ent.heat++
	return ent.heat >= uint64(s.cfg.AdmitHeat)
}

// admitLocked installs frame (store-owned, pooled) as key's cached copy,
// evicting the coldest frames until it fits. Caller holds s.mu.
func (s *compressedStore) admitLocked(key storage.Key, ent *centry, frame []byte) {
	need := int64(len(frame))
	if need > s.cfg.CacheBytes {
		bufpool.Put(frame)
		return
	}
	if ent.frame != nil {
		s.bytes -= int64(len(ent.frame))
		bufpool.Put(ent.frame)
		ent.frame = nil
	}
	for s.bytes+need > s.cfg.CacheBytes {
		var coldKey storage.Key
		var cold *centry
		for k, e := range s.cache {
			if e.frame == nil || e == ent {
				continue
			}
			if cold == nil || e.seq < cold.seq || (e.seq == cold.seq && k < coldKey) {
				cold, coldKey = e, k
			}
		}
		if cold == nil {
			bufpool.Put(frame)
			return
		}
		s.bytes -= int64(len(cold.frame))
		bufpool.Put(cold.frame)
		cold.frame = nil
	}
	ent.frame = frame
	s.bytes += need
}

// entryLocked returns key's cache record, creating a ghost if absent.
func (s *compressedStore) entryLocked(key storage.Key) *centry {
	ent := s.cache[key]
	if ent == nil {
		ent = &centry{}
		s.cache[key] = ent
	}
	return ent
}

// dropLocked removes key's cached frame and record.
func (s *compressedStore) dropLocked(key storage.Key) {
	if ent := s.cache[key]; ent != nil {
		if ent.frame != nil {
			s.bytes -= int64(len(ent.frame))
			bufpool.Put(ent.frame)
		}
		delete(s.cache, key)
	}
}

// put frames data and writes it down, optionally caching the frame. It
// consumes data when own is true (PutBuf semantics) — except on error, when
// the caller keeps it for retry.
func (s *compressedStore) put(key storage.Key, data []byte, own bool) error {
	frame := s.encodeFrame(data)
	frameLen := len(frame)
	storedRaw := frame[1] == codecRaw

	s.mu.Lock()
	ent := s.entryLocked(key)
	warm := s.touchLocked(ent)
	cache := s.cfg.CacheBytes > 0 && warm
	s.mu.Unlock()

	// When caching, the store keeps frame and a pooled copy goes to the
	// media; otherwise frame itself goes down (and must not be touched after
	// a successful PutBuf — ownership transfers).
	down := frame
	if cache {
		down = bufpool.Clone(frame)
	}
	if err := storage.PutBuf(s.inner, key, down); err != nil {
		// PutBuf leaves the buffer with the caller on error.
		bufpool.Put(down)
		if cache {
			bufpool.Put(frame)
		}
		// A failed write invalidates whatever frame was cached before.
		s.mu.Lock()
		s.dropLocked(key)
		s.mu.Unlock()
		return err
	}

	s.mu.Lock()
	s.stats.RawBytes += uint64(len(data))
	s.stats.StoredBytes += uint64(frameLen)
	if storedRaw {
		s.stats.Incompressible++
	}
	if cache {
		s.admitLocked(key, ent, frame)
	} else if ent.frame != nil {
		// The write replaced the blob; a stale cached frame must go.
		s.bytes -= int64(len(ent.frame))
		bufpool.Put(ent.frame)
		ent.frame = nil
	}
	s.mu.Unlock()

	if own {
		bufpool.Put(data)
	}
	return nil
}

// Put implements storage.Store (copy semantics: data is never retained).
func (s *compressedStore) Put(key storage.Key, data []byte) error {
	return s.put(key, data, false)
}

// PutBuf implements storage.BufPutter (ownership transfers on success).
func (s *compressedStore) PutBuf(key storage.Key, data []byte) error {
	return s.put(key, data, true)
}

// GetBuf implements storage.BufGetter: the result is a pooled buffer owned
// by this store's read path until ReleaseBuf.
func (s *compressedStore) GetBuf(key storage.Key) ([]byte, error) {
	s.mu.Lock()
	ent := s.cache[key]
	var cached []byte
	if ent != nil && ent.frame != nil {
		// Serve from tier 0.5. The frame is copied out under the lock: the
		// cache may evict or replace it the moment the lock drops.
		cached = bufpool.Clone(ent.frame)
		s.stats.CacheHits++
		s.touchLocked(ent)
	} else {
		s.stats.CacheMisses++
	}
	s.mu.Unlock()

	if cached != nil {
		out, err := s.decodeFrame(cached)
		bufpool.Put(cached)
		if err == nil {
			return out, nil
		}
		// A corrupt cached frame falls through to the durable copy.
		s.mu.Lock()
		s.dropLocked(key)
		s.mu.Unlock()
	}

	frame, err := storage.GetBuf(s.inner, key)
	if err != nil {
		return nil, err
	}
	out, err := s.decodeFrame(frame)
	if err != nil {
		storage.ReleaseBuf(s.inner, frame)
		return nil, err
	}
	s.mu.Lock()
	ent = s.entryLocked(key)
	if s.cfg.CacheBytes > 0 && s.touchLocked(ent) {
		s.admitLocked(key, ent, bufpool.Clone(frame))
	}
	s.mu.Unlock()
	storage.ReleaseBuf(s.inner, frame)
	return out, nil
}

// ReleaseBuf implements storage.BufGetter.
func (s *compressedStore) ReleaseBuf(data []byte) { bufpool.Put(data) }

// Get implements storage.Store. The result is caller-owned (it is a fresh
// pooled buffer, so handing it out is safe).
func (s *compressedStore) Get(key storage.Key) ([]byte, error) { return s.GetBuf(key) }

// Has implements storage.Store.
func (s *compressedStore) Has(key storage.Key) bool {
	s.mu.Lock()
	if ent := s.cache[key]; ent != nil && ent.frame != nil {
		s.mu.Unlock()
		return true
	}
	s.mu.Unlock()
	return s.inner.Has(key)
}

// Delete implements storage.Store.
func (s *compressedStore) Delete(key storage.Key) error {
	s.mu.Lock()
	s.dropLocked(key)
	s.mu.Unlock()
	return s.inner.Delete(key)
}

// Close implements storage.Store: the cache is dropped, the inner store
// closed.
func (s *compressedStore) Close() error {
	s.mu.Lock()
	for key := range s.cache {
		s.dropLocked(key)
	}
	s.mu.Unlock()
	return s.inner.Close()
}

// Stats returns the tier-0.5 counters.
func (s *compressedStore) Stats() CompressStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.stats
	out.CacheBytes = s.bytes
	for _, e := range s.cache {
		if e.frame != nil {
			out.CacheBlobs++
		}
	}
	return out
}

var (
	_ storage.Store     = (*compressedStore)(nil)
	_ storage.BufGetter = (*compressedStore)(nil)
	_ storage.BufPutter = (*compressedStore)(nil)
)

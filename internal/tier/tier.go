// Package tier implements a capacity-aware multi-tier out-of-core storage
// hierarchy: a composite storage.Store made of ranked tiers — tier 0 a
// byte-leased fast medium (remote memory donated by another node), tier 1 a
// disk backstop — with adaptive placement between them.
//
// The paper's conclusion proposes "the memory of remote nodes as out-of-core
// media"; this package realizes it the way real heterogeneous-memory systems
// do (GALE 2025, the external-memory simulation literature): remote RAM is a
// *bounded fast tier in front of* disk, not a replacement for it. Placement
// policy:
//
//   - Write admission by size and heat: an evicted blob lands in tier 0 when
//     it fits the lease (and AdmitMax); once usage crosses the high
//     watermark only previously-seen (warm) keys are admitted, cold
//     first-timers go to disk.
//   - Spill, never fail: when tier 0 is full — or its store errors — the
//     write goes to tier 1 and succeeds. Running out of remote memory is a
//     placement decision, not an I/O error.
//   - Background demotion: past the high watermark the coldest tier-0 blobs
//     are copied down until usage reaches the low watermark. Demotions ride
//     the inner I/O scheduler's eviction-write class, so demand reads always
//     win the disk.
//   - Promotion on repeated demand misses: a blob read from disk PromoteAfter
//     times is copied up. Promotions ride the prefetch class (bounded,
//     cancellable) so they can never starve demand loads.
//
// Every blob is resident in exactly one tier, or in flight between them with
// its bytes conservatively charged to tier 0; tier-0 charged bytes never
// exceed the lease. CheckInvariants audits both properties and the
// simulation harness sweeps them continuously.
package tier

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"sync"

	"mrts/internal/clock"
	"mrts/internal/obs"
	"mrts/internal/storage"
	"mrts/internal/swapio"
)

// Config assembles a tiered Store.
type Config struct {
	// Fast is tier 0 (remote memory). May be nil when Capacity is 0.
	Fast storage.Store
	// Slow is tier 1, the backstop (disk, usually behind the LatencyStore /
	// FaultStore stack). Required.
	Slow storage.Store
	// Capacity is the tier-0 byte lease: 0 disables tier 0 entirely (pure
	// disk), < 0 means unbounded (pure remote memory with a disk backstop).
	Capacity int64
	// HighWater and LowWater are the demotion watermarks as fractions of
	// Capacity: crossing HighWater starts background demotion down to
	// LowWater. Defaults 0.9 and 0.7.
	HighWater, LowWater float64
	// AdmitMax caps the size of a blob admitted to tier 0 (0 = no size
	// gate beyond fitting the lease).
	AdmitMax int64
	// PromoteAfter is how many demand misses served by tier 1 promote a
	// blob back to tier 0. Default 2; < 0 disables promotion.
	PromoteAfter int
	// Workers is the inner I/O worker count serving tier 1 (default 2).
	Workers int
	// Compress, when non-nil, inserts the transparent compression layer
	// (tier 0.5) between the placement policy and Slow: tier-1 writes are
	// framed and flate-compressed on the way down, and a byte-capped RAM
	// cache of compressed frames absorbs repeat reads before they reach the
	// disk. See CompressConfig.
	Compress *CompressConfig
	// Retry is the retry policy of the inner scheduler (absorbs transient
	// tier-1 faults in demand reads and demotion writes).
	Retry storage.RetryPolicy
	// Tracer, when non-nil, receives tier.spill / tier.demote /
	// tier.promote instants (Arg: blob bytes).
	Tracer *obs.Tracer
	// Clock paces WaitIdle polling and the inner scheduler (nil = wall
	// clock).
	Clock clock.Clock
}

// place is where a blob's authoritative copy lives.
type place uint8

const (
	// nowhere: the entry is only a latch/heat ghost (never stored, or a
	// failed put).
	nowhere place = iota
	// inFast: resident in tier 0.
	inFast
	// inSlow: resident in tier 1.
	inSlow
	// demoting: moving fast→slow; the fast copy stays authoritative (and
	// charged) until the slow write lands.
	demoting
	// promoting: moving slow→fast; the slow copy stays authoritative, the
	// fast bytes are already reserved (charged) so the lease cannot be
	// oversubscribed by in-flight promotions.
	promoting
)

func (p place) String() string {
	switch p {
	case inFast:
		return "fast"
	case inSlow:
		return "slow"
	case demoting:
		return "demoting"
	case promoting:
		return "promoting"
	default:
		return "nowhere"
	}
}

// entry is the index record of one key.
type entry struct {
	size    int64 // bytes of the last durable write
	charged int64 // bytes this key currently charges against the lease
	place   place
	gen     uint64 // bumped by every Put/Delete; in-flight movers abandon on mismatch
	seq     uint64 // last-touch logical sequence (LRU order; no wall time)
	heat    uint64 // lifetime touches — the admission policy's warmth signal
	misses  int    // demand reads served by tier 1 since the last placement
	writing bool   // per-key mutation latch: one store mutation at a time
}

// errSuperseded aborts an in-flight demotion whose key was rewritten or
// deleted first.
var errSuperseded = errors.New("tier: move superseded")

// Stats is a point-in-time snapshot of tier activity.
type Stats struct {
	// FastHits / SlowHits count demand Gets served by each tier.
	FastHits, SlowHits uint64
	// FastPuts counts writes admitted to tier 0; Spills writes placed
	// directly on tier 1 (no lease room, too big, too cold, or a tier-0
	// write error).
	FastPuts, Spills uint64
	// Demotions / Promotions count completed background moves;
	// the *Fails counters moves that errored (the blob stayed put).
	Demotions, Promotions         uint64
	DemotionFails, PromotionFails uint64
	// FastPutErrors counts tier-0 write errors absorbed by spilling;
	// FastReadErrors tier-0 read errors surfaced to the caller's retry.
	FastPutErrors, FastReadErrors uint64
	// FastBytes is the lease usage (resident + in-flight reservations);
	// Capacity the lease itself (summed across stores by Add).
	FastBytes, Capacity int64
	// FastBlobs / SlowBlobs count resident blobs per tier (in-flight moves
	// count at their authoritative tier).
	FastBlobs, SlowBlobs int
}

// HitRatio returns the fraction of demand reads served by tier 0.
func (s Stats) HitRatio() float64 {
	total := s.FastHits + s.SlowHits
	if total == 0 {
		return 0
	}
	return float64(s.FastHits) / float64(total)
}

// Add accumulates other into s (counters and gauges sum).
func (s *Stats) Add(other Stats) {
	s.FastHits += other.FastHits
	s.SlowHits += other.SlowHits
	s.FastPuts += other.FastPuts
	s.Spills += other.Spills
	s.Demotions += other.Demotions
	s.Promotions += other.Promotions
	s.DemotionFails += other.DemotionFails
	s.PromotionFails += other.PromotionFails
	s.FastPutErrors += other.FastPutErrors
	s.FastReadErrors += other.FastReadErrors
	s.FastBytes += other.FastBytes
	s.Capacity += other.Capacity
	s.FastBlobs += other.FastBlobs
	s.SlowBlobs += other.SlowBlobs
}

// Store is the composite tiered store. It implements storage.Store; the
// runtime's swap path uses it like any other backend.
type Store struct {
	cfg    Config
	fast   storage.Store
	slow   storage.Store     // tier 1 as the placement policy sees it (the compression layer when enabled)
	comp   *compressedStore  // tier 0.5, nil when Compress is not configured
	inner  *swapio.Scheduler // serves tier 1: demand reads, demotion writes, promotion reads
	clk    clock.Clock
	tracer *obs.Tracer

	highMark, lowMark int64

	mu        sync.Mutex
	cond      *sync.Cond
	index     map[storage.Key]*entry
	fastBytes int64 // sum of entry.charged — resident + reserved lease usage
	seq       uint64
	inFlight  int // scheduled demotions + promotions not yet finished
	closed    bool
	stats     Stats
}

// New builds a tiered store over cfg.Fast and cfg.Slow. The returned store
// owns both: Close closes the inner scheduler (draining demotions), then the
// fast store; the slow store is closed by the inner scheduler.
func New(cfg Config) (*Store, error) {
	if cfg.Slow == nil {
		return nil, errors.New("tier: Slow store is required")
	}
	if cfg.Fast == nil && cfg.Capacity != 0 {
		return nil, errors.New("tier: Fast store is required when Capacity != 0")
	}
	if cfg.HighWater <= 0 || cfg.HighWater > 1 {
		cfg.HighWater = 0.9
	}
	if cfg.LowWater <= 0 || cfg.LowWater >= cfg.HighWater {
		cfg.LowWater = cfg.HighWater * 7 / 9
	}
	if cfg.PromoteAfter == 0 {
		cfg.PromoteAfter = 2
	}
	slow := cfg.Slow
	var comp *compressedStore
	if cfg.Compress != nil {
		comp = newCompressedStore(cfg.Slow, *cfg.Compress, cfg.Clock)
		slow = comp
	}
	s := &Store{
		cfg:    cfg,
		fast:   cfg.Fast,
		slow:   slow,
		comp:   comp,
		clk:    clock.Or(cfg.Clock),
		tracer: cfg.Tracer,
		index:  make(map[storage.Key]*entry),
	}
	if cfg.Capacity > 0 {
		s.highMark = int64(float64(cfg.Capacity) * cfg.HighWater)
		s.lowMark = int64(float64(cfg.Capacity) * cfg.LowWater)
	}
	s.cond = sync.NewCond(&s.mu)
	s.inner = swapio.New(slow, swapio.Config{
		Workers: cfg.Workers,
		Retry:   cfg.Retry,
		Clock:   cfg.Clock,
	})
	return s, nil
}

// acquireLocked claims key's mutation latch for a Put/Delete, creating the
// index entry if absent, and bumps the generation so in-flight moves of the
// key abandon themselves. Callers must hold s.mu.
func (s *Store) acquireLocked(key storage.Key) *entry {
	for {
		ent := s.index[key]
		if ent == nil {
			ent = &entry{}
			s.index[key] = ent
		}
		if !ent.writing {
			ent.writing = true
			ent.gen++
			return ent
		}
		s.cond.Wait()
	}
}

// releaseLocked drops the mutation latch.
func (s *Store) releaseLocked(ent *entry) {
	ent.writing = false
	s.cond.Broadcast()
}

// touchLocked records an access for the LRU/heat policy.
func (s *Store) touchLocked(ent *entry) {
	s.seq++
	ent.seq = s.seq
	ent.heat++
}

// admitLocked decides whether a write of size bytes goes to tier 0.
func (s *Store) admitLocked(ent *entry, size int64) bool {
	c := s.cfg.Capacity
	if c == 0 || s.fast == nil {
		return false
	}
	if c < 0 {
		return true
	}
	if s.cfg.AdmitMax > 0 && size > s.cfg.AdmitMax {
		return false
	}
	projected := s.fastBytes - ent.charged + size
	if projected > c {
		return false
	}
	// Above the high watermark the lease is contended: only keys already
	// seen (warm) are worth the space, cold first-timers spill.
	if projected > s.highMark && ent.heat == 0 {
		return false
	}
	return true
}

func (s *Store) overHighLocked() bool {
	return s.cfg.Capacity > 0 && s.fastBytes > s.highMark
}

// Put implements storage.Store. Tier-0 admission is by size and heat; a
// write the fast tier cannot take — no lease room, or any fast-store error —
// spills to tier 1 and still succeeds.
func (s *Store) Put(key storage.Key, data []byte) error {
	size := int64(len(data))
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return storage.ErrClosed
	}
	ent := s.acquireLocked(key)
	prevPlace := ent.place
	wasFast := prevPlace == inFast || prevPlace == demoting
	oldSize := ent.size
	admit := s.admitLocked(ent, size)
	if admit {
		// Same-key overwrite replaces the old value atomically on the
		// server, so charging the delta up front keeps the accounting a
		// ceiling of the server's residency — the lease is never exceeded.
		s.fastBytes += size - ent.charged
		ent.charged = size
	}
	s.mu.Unlock()

	if admit {
		err := s.fast.Put(key, data)
		if err == nil {
			if prevPlace == inSlow || prevPlace == promoting {
				// Scrub the stale tier-1 copy: residency stays single.
				_ = s.slow.Delete(key)
			}
			s.mu.Lock()
			ent.place = inFast
			ent.size = size
			ent.misses = 0
			s.touchLocked(ent)
			s.stats.FastPuts++
			s.releaseLocked(ent)
			over := s.overHighLocked()
			s.mu.Unlock()
			if over {
				s.demote()
			}
			return nil
		}
		// Loud but absorbed: tier 0 refused the write (lease race on the
		// server, transient fault, bad server) — spill instead of failing
		// the eviction.
		s.mu.Lock()
		s.fastBytes -= ent.charged
		ent.charged = 0
		if wasFast {
			// Old fast copy presumed intact (the failed Put did not land);
			// the spill below will scrub it.
			ent.charged = oldSize
			s.fastBytes += oldSize
		}
		s.stats.FastPutErrors++
		s.mu.Unlock()
	}

	// Spill path: the blob goes straight to tier 1.
	err := s.slow.Put(key, data)
	if err == nil && wasFast && s.fast != nil {
		_ = s.fast.Delete(key) // scrub the stale tier-0 copy (still latched)
	}
	s.mu.Lock()
	if err != nil {
		// The write failed everywhere; whatever was resident before stays
		// authoritative. A mid-promotion entry reverts to its slow copy and
		// drops the orphaned reservation — the gen bump means no mover will
		// reconcile either.
		if wasFast {
			ent.place = inFast
		} else {
			if ent.place == promoting {
				ent.place = inSlow
			}
			s.fastBytes -= ent.charged
			ent.charged = 0
		}
		s.releaseLocked(ent)
		s.mu.Unlock()
		return err
	}
	// Release whatever this key still charges against the lease — an old fast
	// residency, or a promotion reservation orphaned by the gen bump. The
	// latch plus that bump guarantee no mover still owns the charge.
	s.fastBytes -= ent.charged
	ent.charged = 0
	ent.place = inSlow
	ent.size = size
	ent.misses = 0
	s.touchLocked(ent)
	s.stats.Spills++
	s.releaseLocked(ent)
	s.mu.Unlock()
	s.tracer.Emit(obs.KindTierSpill, 0, size)
	return nil
}

// Get implements storage.Store. Tier-0 residents are read directly; tier-1
// residents go through the inner scheduler at demand class. A tier-0 read
// error propagates (the caller's retry policy re-drives the whole tiered
// Get) unless the key has moved meanwhile, in which case the read is
// re-dispatched against its new home.
func (s *Store) Get(key storage.Key) ([]byte, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, storage.ErrClosed
	}
	ent := s.index[key]
	if ent == nil || ent.place == nowhere {
		s.mu.Unlock()
		return nil, storage.ErrNotFound
	}
	for {
		if ent.place == nowhere { // deleted while we were chasing it
			s.mu.Unlock()
			return nil, storage.ErrNotFound
		}
		gen := ent.gen
		if ent.place == inFast || ent.place == demoting {
			s.mu.Unlock()
			data, err := s.fast.Get(key)
			s.mu.Lock()
			if err == nil {
				s.stats.FastHits++
				s.touchLocked(ent)
				s.mu.Unlock()
				return data, nil
			}
			if ent.gen != gen || (ent.place != inFast && ent.place != demoting) {
				continue // the key moved mid-read; chase it
			}
			s.stats.FastReadErrors++
			s.mu.Unlock()
			return nil, err
		}
		// Tier-1 resident (inSlow, or promoting with the slow copy still
		// authoritative). A concurrent promotion load of the same key
		// coalesces inside the inner scheduler.
		s.mu.Unlock()
		data, err := s.inner.LoadSync(key, 0)
		s.mu.Lock()
		if err != nil {
			if ent.gen != gen || (ent.place != inSlow && ent.place != promoting) {
				continue // promotion or a racing Put moved it; chase
			}
			s.mu.Unlock()
			return nil, err
		}
		s.stats.SlowHits++
		s.touchLocked(ent)
		promote := false
		var psize int64
		if ent.place == inSlow && ent.gen == gen {
			ent.misses++
			if s.cfg.PromoteAfter > 0 && ent.misses >= s.cfg.PromoteAfter {
				promote = s.reservePromoteLocked(ent)
				gen = ent.gen
				psize = ent.size // read under s.mu; a racing Put mutates it
			}
		}
		s.mu.Unlock()
		if promote {
			s.startPromote(key, ent, gen, psize)
		}
		return data, nil
	}
}

// Delete implements storage.Store: the key leaves every tier.
func (s *Store) Delete(key storage.Key) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return storage.ErrClosed
	}
	ent := s.acquireLocked(key)
	hadFast := ent.place == inFast || ent.place == demoting
	hadSlow := ent.place == inSlow || ent.place == promoting
	s.mu.Unlock()
	var ferr, serr error
	if hadFast && s.fast != nil {
		ferr = s.fast.Delete(key)
	}
	if hadSlow {
		serr = s.slow.Delete(key)
	}
	s.mu.Lock()
	s.fastBytes -= ent.charged
	ent.charged = 0
	ent.place = nowhere // readers chasing the old pointer see the tombstone
	delete(s.index, key)
	s.releaseLocked(ent)
	s.mu.Unlock()
	if ferr != nil {
		return ferr
	}
	return serr
}

// Has implements storage.Store from the index — no store round trip; every
// write flows through Put, so the index is authoritative.
func (s *Store) Has(key storage.Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	ent := s.index[key]
	return ent != nil && ent.place != nowhere
}

// Close drains the inner scheduler (pending demotions complete, queued
// promotions cancel), closing the slow store, then closes the fast store.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.inner.Close()
	if s.fast != nil {
		if ferr := s.fast.Close(); err == nil {
			err = ferr
		}
	}
	return err
}

// demote schedules background demotions of the coldest tier-0 blobs until
// the projected usage reaches the low watermark. The moves ride the inner
// scheduler's eviction-write class: demand reads always dispatch first.
func (s *Store) demote() {
	type victim struct {
		key storage.Key
		ent *entry
		gen uint64
	}
	s.mu.Lock()
	if s.closed || !s.overHighLocked() {
		s.mu.Unlock()
		return
	}
	var pending int64 // bytes already leaving in a prior wave
	var cands []victim
	for k, e := range s.index {
		switch e.place {
		case demoting:
			pending += e.charged
		case inFast:
			if !e.writing {
				cands = append(cands, victim{key: k, ent: e})
			}
		}
	}
	need := s.fastBytes - pending - s.lowMark
	if need <= 0 {
		s.mu.Unlock()
		return
	}
	// Coldest first; ties broken by key so the wave is deterministic under
	// a seeded schedule (map iteration order is not).
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].ent.seq != cands[j].ent.seq {
			return cands[i].ent.seq < cands[j].ent.seq
		}
		return cands[i].key < cands[j].key
	})
	var picked []victim
	for _, c := range cands {
		if need <= 0 {
			break
		}
		c.ent.place = demoting
		c.gen = c.ent.gen
		s.inFlight++
		need -= c.ent.size
		picked = append(picked, c)
	}
	s.mu.Unlock()
	for _, v := range picked {
		s.scheduleDemotion(v.key, v.ent, v.gen)
	}
}

// scheduleDemotion submits one fast→slow move at write class. The encode
// hook (running on an inner I/O worker) acquires the key's latch, reads the
// fast copy and hands it to the scheduler, which performs the retried slow
// write; the done hook finalizes the move. The latch is held across the
// whole move, so a racing Put or Delete of the same key serializes behind
// it — tier-1 writes for one key can never reorder.
func (s *Store) scheduleDemotion(key storage.Key, ent *entry, gen uint64) {
	abort := func(failed bool) {
		s.mu.Lock()
		if ent.gen == gen && ent.place == demoting {
			ent.place = inFast
		}
		if failed {
			s.stats.DemotionFails++
		}
		s.inFlight--
		s.mu.Unlock()
	}
	// aborted marks a move reconciled inside the encode hook; encode and done
	// run sequentially on one inner worker, so a plain bool is safe. The done
	// hook cannot infer the abort from a nil blob — a zero-length value
	// encodes to one.
	aborted := false
	ok := s.inner.Store(key, 0, func() ([]byte, error) {
		s.mu.Lock()
		for ent.writing {
			s.cond.Wait()
		}
		if ent.gen != gen || ent.place != demoting {
			s.mu.Unlock()
			aborted = true
			abort(false)
			return nil, errSuperseded
		}
		ent.writing = true
		s.mu.Unlock()
		blob, err := s.fast.Get(key)
		if err != nil {
			s.mu.Lock()
			s.releaseLocked(ent)
			s.mu.Unlock()
			aborted = true
			abort(true)
			return nil, err
		}
		return blob, nil
	}, nil, func(n int, err error) {
		if aborted {
			return // reconciled in the encode hook
		}
		size := int64(n)
		if err != nil {
			// The slow write failed after retries: the blob stays in fast,
			// still charged — loud, not lost.
			s.mu.Lock()
			s.releaseLocked(ent)
			s.mu.Unlock()
			abort(true)
			return
		}
		// The slow copy is durable: flip residency before scrubbing the
		// fast copy so concurrent reads always find a valid home.
		s.mu.Lock()
		ent.place = inSlow
		ent.misses = 0
		s.mu.Unlock()
		_ = s.fast.Delete(key)
		s.mu.Lock()
		s.fastBytes -= ent.charged
		ent.charged = 0
		s.stats.Demotions++
		s.inFlight--
		s.releaseLocked(ent)
		over := s.overHighLocked()
		s.mu.Unlock()
		s.tracer.Emit(obs.KindTierDemote, 0, size)
		if over {
			s.demote()
		}
	})
	if !ok {
		abort(false)
	}
}

// reservePromoteLocked charges the lease for an upcoming promotion so
// concurrent promotions cannot oversubscribe it. Promotion is gated on the
// high watermark: promoting into a contended lease would just thrash the
// demoter.
func (s *Store) reservePromoteLocked(ent *entry) bool {
	if s.cfg.Capacity == 0 || s.fast == nil {
		return false
	}
	if s.cfg.Capacity > 0 {
		if s.cfg.AdmitMax > 0 && ent.size > s.cfg.AdmitMax {
			return false
		}
		if s.fastBytes+ent.size > s.highMark {
			return false
		}
	}
	ent.charged = ent.size
	s.fastBytes += ent.size
	ent.place = promoting
	s.inFlight++
	return true
}

// startPromote submits the slow→fast move: a prefetch-class read (bounded,
// cancellable, never ahead of demand) whose callback installs the blob in
// tier 0 and scrubs the tier-1 copy.
func (s *Store) startPromote(key storage.Key, ent *entry, gen uint64, size int64) {
	release := func(failed bool) {
		// Only release if this promotion still owns the reservation: a
		// superseding Put/Delete reconciles the charge itself.
		if ent.gen == gen && ent.place == promoting {
			s.fastBytes -= ent.charged
			ent.charged = 0
			ent.place = inSlow
			ent.misses = 0
			if failed {
				s.stats.PromotionFails++
			}
		}
		s.inFlight--
	}
	ok := s.inner.Load(key, 0, swapio.Prefetch, func(blob []byte, err error) {
		s.mu.Lock()
		if err != nil || ent.gen != gen || ent.place != promoting {
			release(err != nil && ent.gen == gen)
			s.mu.Unlock()
			return
		}
		// Install under the key's latch: serialized against Put/Delete.
		for ent.writing {
			s.cond.Wait()
			if ent.gen != gen || ent.place != promoting {
				release(false)
				s.mu.Unlock()
				return
			}
		}
		ent.writing = true
		s.mu.Unlock()
		perr := s.fast.Put(key, blob)
		if perr == nil {
			_ = s.slow.Delete(key)
		}
		s.mu.Lock()
		if perr != nil {
			release(true)
		} else {
			ent.place = inFast // the reservation becomes the residency charge
			ent.misses = 0
			s.stats.Promotions++
			s.inFlight--
		}
		s.releaseLocked(ent)
		over := s.overHighLocked()
		s.mu.Unlock()
		if perr == nil {
			s.tracer.Emit(obs.KindTierPromote, 0, size)
			if over {
				s.demote()
			}
		}
	})
	if !ok {
		// Prefetch bound or shutdown: no promotion this round.
		s.mu.Lock()
		release(false)
		s.mu.Unlock()
	}
}

// WaitIdle blocks until no demotion or promotion is in flight and no key is
// latched by an in-progress mutation, stable across a clock tick — the
// quiescence hook the simulation audit uses before its deep residency
// checks. Under a virtual clock the tick only elapses at global quiescence,
// so an idle observation right after it cannot hide a mutation that is
// merely between dispatch and latch.
func (s *Store) WaitIdle() {
	idle := func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.inFlight != 0 {
			return false
		}
		for _, e := range s.index {
			if e.writing {
				return false
			}
		}
		return true
	}
	for {
		s.clk.Sleep(200 * time.Microsecond)
		if idle() {
			s.clk.Sleep(200 * time.Microsecond)
			if idle() {
				return
			}
		}
	}
}

// Snapshot returns the tier counters plus current residency.
func (s *Store) Snapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.stats
	out.FastBytes = s.fastBytes
	out.Capacity = s.cfg.Capacity
	for _, e := range s.index {
		switch e.place {
		case inFast, demoting:
			out.FastBlobs++
		case inSlow, promoting:
			out.SlowBlobs++
		}
	}
	return out
}

// IOStats exposes the inner scheduler's counters (demotion writes, promotion
// prefetches, demand reads against tier 1).
func (s *Store) IOStats() swapio.Stats { return s.inner.Snapshot() }

// CompressStats returns the tier-0.5 counters; ok is false when the store
// was built without a compression layer.
func (s *Store) CompressStats() (stats CompressStats, ok bool) {
	if s.comp == nil {
		return CompressStats{}, false
	}
	return s.comp.Stats(), true
}

// CheckInvariants audits the tier state and returns one message per
// violation. The shallow form (deep=false) checks the always-true accounting
// properties and is safe to run concurrently with traffic; the deep form
// additionally verifies single-tier residency against the backing stores and
// must only run at quiescence (after WaitIdle, no concurrent operations).
func (s *Store) CheckInvariants(deep bool) []string {
	var out []string
	s.mu.Lock()
	var charged int64
	for _, e := range s.index {
		charged += e.charged
		if e.charged < 0 {
			out = append(out, fmt.Sprintf("tier: negative charge %d", e.charged))
		}
	}
	if charged != s.fastBytes {
		out = append(out, fmt.Sprintf("tier: fastBytes=%d but entries charge %d", s.fastBytes, charged))
	}
	if s.cfg.Capacity > 0 && s.fastBytes > s.cfg.Capacity {
		out = append(out, fmt.Sprintf("tier: lease exceeded: %d charged > %d capacity", s.fastBytes, s.cfg.Capacity))
	}
	if !deep {
		s.mu.Unlock()
		return out
	}
	type snap struct {
		key storage.Key
		ent entry
	}
	var snaps []snap
	for k, e := range s.index {
		snaps = append(snaps, snap{key: k, ent: *e})
	}
	s.mu.Unlock()
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].key < snaps[j].key })
	for _, sn := range snaps {
		k, e := sn.key, sn.ent
		if e.writing {
			out = append(out, fmt.Sprintf("tier: %q latched at quiescence", k))
		}
		switch e.place {
		case demoting, promoting:
			out = append(out, fmt.Sprintf("tier: %q still %s at quiescence", k, e.place))
		case inFast:
			if e.charged != e.size {
				out = append(out, fmt.Sprintf("tier: fast-resident %q charges %d, size %d", k, e.charged, e.size))
			}
			if s.fast != nil && !s.fast.Has(k) {
				out = append(out, fmt.Sprintf("tier: %q indexed fast but tier 0 lacks it", k))
			}
			if s.slow.Has(k) {
				out = append(out, fmt.Sprintf("tier: %q resident in both tiers", k))
			}
		case inSlow:
			if e.charged != 0 {
				out = append(out, fmt.Sprintf("tier: slow-resident %q still charges %d", k, e.charged))
			}
			if !s.slow.Has(k) {
				out = append(out, fmt.Sprintf("tier: %q indexed slow but tier 1 lacks it", k))
			}
			if s.fast != nil && s.fast.Has(k) {
				out = append(out, fmt.Sprintf("tier: %q resident in both tiers", k))
			}
		default:
			if e.charged != 0 {
				out = append(out, fmt.Sprintf("tier: ghost %q charges %d", k, e.charged))
			}
		}
	}
	return out
}

var _ storage.Store = (*Store)(nil)

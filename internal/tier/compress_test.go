package tier

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"mrts/internal/bufpool"
	"mrts/internal/storage"
)

// compressible returns n bytes that DEFLATE shrinks well (repeating text).
func compressible(n int) []byte {
	pat := []byte("the quick brown fox jumps over the lazy dog; ")
	out := make([]byte, n)
	for i := range out {
		out[i] = pat[i%len(pat)]
	}
	return out
}

// incompressible returns n bytes of seeded noise.
func incompressible(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, n)
	rng.Read(out)
	return out
}

func TestCompressedStoreRoundTrip(t *testing.T) {
	inner := storage.NewMem()
	cs := newCompressedStore(inner, CompressConfig{CacheBytes: 1 << 20}, nil)
	defer cs.Close()

	cases := map[string][]byte{
		"text":  compressible(8 << 10),
		"noise": incompressible(8<<10, 1),
		"small": []byte("tiny"),
		"empty": {},
	}
	for name, want := range cases {
		if err := cs.Put(storage.Key(name), want); err != nil {
			t.Fatalf("Put %s: %v", name, err)
		}
		got, err := cs.Get(storage.Key(name))
		if err != nil {
			t.Fatalf("Get %s: %v", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: round trip mismatch (%d bytes vs %d)", name, len(got), len(want))
		}
	}

	st := cs.Stats()
	if st.RawBytes <= st.StoredBytes {
		t.Fatalf("no compression win: raw %d stored %d", st.RawBytes, st.StoredBytes)
	}
	if st.Ratio() <= 1 {
		t.Fatalf("ratio %.2f, want > 1", st.Ratio())
	}
	// noise, small and empty all store raw.
	if st.Incompressible != 3 {
		t.Fatalf("incompressible = %d, want 3", st.Incompressible)
	}
}

// On-media bytes must be the compressed frame, not the raw blob — that is
// the bytes_moved reduction the layer exists for.
func TestCompressedStoreShrinksMediaBytes(t *testing.T) {
	inner := storage.NewMem()
	cs := newCompressedStore(inner, CompressConfig{}, nil)
	defer cs.Close()

	raw := compressible(64 << 10)
	if err := cs.Put("k", raw); err != nil {
		t.Fatal(err)
	}
	onMedia := inner.Stats().BytesWritten
	if onMedia >= uint64(len(raw))/2 {
		t.Fatalf("media wrote %d bytes for a %d-byte compressible blob", onMedia, len(raw))
	}
}

func TestCompressedStoreCacheServesRepeatReads(t *testing.T) {
	inner := storage.NewMem()
	cs := newCompressedStore(inner, CompressConfig{CacheBytes: 1 << 20, AdmitHeat: 2}, nil)
	defer cs.Close()

	want := compressible(16 << 10)
	if err := cs.Put("hot", want); err != nil { // touch 1
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // touch 2 admits on read, 3+ hit
		got, err := cs.Get("hot")
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("read %d: err=%v match=%v", i, err, bytes.Equal(got, want))
		}
	}
	st := cs.Stats()
	if st.CacheHits == 0 {
		t.Fatalf("no cache hits after repeat reads: %+v", st)
	}
	if st.CacheBlobs != 1 || st.CacheBytes <= 0 {
		t.Fatalf("cache residency: blobs=%d bytes=%d", st.CacheBlobs, st.CacheBytes)
	}
	gets := inner.Stats().Gets
	if gets > 2 {
		t.Fatalf("inner store saw %d gets; cache should have absorbed the repeats", gets)
	}
}

func TestCompressedStoreCacheEvictsColdest(t *testing.T) {
	inner := storage.NewMem()
	// Room for roughly one compressed 8KiB frame at a time.
	cs := newCompressedStore(inner, CompressConfig{CacheBytes: 512, AdmitHeat: 1, MinSize: 1}, nil)
	defer cs.Close()

	for i := 0; i < 4; i++ {
		key := storage.Key(fmt.Sprintf("k%d", i))
		if err := cs.Put(key, compressible(8<<10)); err != nil {
			t.Fatal(err)
		}
	}
	st := cs.Stats()
	if st.CacheBytes > 512 {
		t.Fatalf("cache over cap: %d > 512", st.CacheBytes)
	}
	// Every key still readable regardless of cache churn.
	for i := 0; i < 4; i++ {
		key := storage.Key(fmt.Sprintf("k%d", i))
		if _, err := cs.Get(key); err != nil {
			t.Fatalf("Get %s after eviction churn: %v", key, err)
		}
	}
}

func TestCompressedStoreDeleteDropsCache(t *testing.T) {
	inner := storage.NewMem()
	cs := newCompressedStore(inner, CompressConfig{CacheBytes: 1 << 20, AdmitHeat: 1}, nil)
	defer cs.Close()

	if err := cs.Put("k", compressible(4<<10)); err != nil {
		t.Fatal(err)
	}
	if err := cs.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if cs.Has("k") {
		t.Fatal("Has after Delete")
	}
	if _, err := cs.Get("k"); err == nil {
		t.Fatal("Get after Delete succeeded")
	}
	if st := cs.Stats(); st.CacheBytes != 0 || st.CacheBlobs != 0 {
		t.Fatalf("cache not emptied by Delete: %+v", st)
	}
}

// A corrupted frame (bad magic, absurd rawLen, truncated stream) must error,
// never crash or over-allocate.
func TestCompressedStoreCorruptFrames(t *testing.T) {
	inner := storage.NewMem()
	cs := newCompressedStore(inner, CompressConfig{}, nil)
	defer cs.Close()

	cases := map[string][]byte{
		"short":     {frameMagic, codecRaw},
		"bad-magic": {0x00, codecRaw, 0, 0, 0, 0},
		"huge-raw":  {frameMagic, codecFlate, 0xFF, 0xFF, 0xFF, 0xFF},
		"bad-codec": {frameMagic, 9, 0, 0, 0, 0},
		"raw-len":   {frameMagic, codecRaw, 9, 0, 0, 0, 'x'},
		"flate-cut": {frameMagic, codecFlate, 16, 0, 0, 0, 0x01},
	}
	for name, frame := range cases {
		if err := inner.Put(storage.Key(name), frame); err != nil {
			t.Fatal(err)
		}
		if _, err := cs.Get(storage.Key(name)); err == nil {
			t.Fatalf("%s: corrupted frame decoded without error", name)
		}
	}
	// huge-raw must have failed on the bound, not by attempting the alloc.
	if _, err := cs.Get("huge-raw"); err == nil || !strings.Contains(err.Error(), "limit") {
		t.Fatalf("huge-raw error = %v, want raw-length bound", err)
	}
}

// PutBuf/GetBuf ownership discipline under poisoning: concurrent writers and
// readers over a small keyspace; any read-after-release surfaces as a
// corrupted payload or a race report.
func TestCompressedStorePooledPathsHammer(t *testing.T) {
	bufpool.SetPoison(true)
	defer bufpool.SetPoison(false)

	inner := storage.NewMem()
	cs := newCompressedStore(inner, CompressConfig{CacheBytes: 4 << 10, AdmitHeat: 1, MinSize: 1}, nil)
	defer cs.Close()

	const nKeys = 4
	payloadFor := func(i int) []byte {
		return bytes.Repeat([]byte{byte('A' + i)}, 1024)
	}
	for i := 0; i < nKeys; i++ {
		if err := cs.Put(storage.Key(fmt.Sprintf("k%d", i)), payloadFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for it := 0; it < 200; it++ {
				i := rng.Intn(nKeys)
				key := storage.Key(fmt.Sprintf("k%d", i))
				if rng.Intn(3) == 0 {
					data := bufpool.Clone(payloadFor(i))
					if err := cs.PutBuf(key, data); err != nil {
						bufpool.Put(data)
						errCh <- err
						return
					}
					continue
				}
				got, err := cs.GetBuf(key)
				if err != nil {
					errCh <- err
					return
				}
				want := byte('A' + i)
				for _, b := range got {
					if b != want {
						errCh <- fmt.Errorf("%s: byte %#x, want %#x (read-after-release?)", key, b, want)
						break
					}
				}
				cs.ReleaseBuf(got)
			}
		}(int64(g + 1))
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// The full tier with compression enabled: spills, demotions and promotions
// all round-trip through the framed path, and the tier invariants hold.
func TestTierWithCompressionEndToEnd(t *testing.T) {
	fast := storage.NewMem()
	slow := storage.NewMem()
	ts, err := New(Config{
		Fast:     fast,
		Slow:     slow,
		Capacity: 32 << 10,
		Compress: &CompressConfig{CacheBytes: 16 << 10, AdmitHeat: 1, MinSize: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()

	blobs := map[storage.Key][]byte{}
	for i := 0; i < 24; i++ {
		key := storage.Key(fmt.Sprintf("obj-%02d", i))
		var data []byte
		if i%2 == 0 {
			data = compressible(4 << 10)
		} else {
			data = incompressible(4<<10, int64(i))
		}
		blobs[key] = data
		if err := ts.Put(key, data); err != nil {
			t.Fatalf("Put %s: %v", key, err)
		}
	}
	ts.WaitIdle()
	// Read everything twice: misses promote, repeats hit the frame cache.
	for round := 0; round < 2; round++ {
		for key, want := range blobs {
			got, err := ts.Get(key)
			if err != nil {
				t.Fatalf("Get %s: %v", key, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s: corrupted round trip", key)
			}
		}
		ts.WaitIdle()
	}
	if msgs := ts.CheckInvariants(true); len(msgs) > 0 {
		t.Fatalf("invariants violated: %v", msgs)
	}
	cst, ok := ts.CompressStats()
	if !ok {
		t.Fatal("CompressStats reports no compression layer")
	}
	if cst.RawBytes == 0 || cst.Ratio() <= 1 {
		t.Fatalf("compression stats: %+v", cst)
	}
	if _, ok := New(Config{Slow: storage.NewMem()}); ok != nil {
		t.Fatalf("plain config: %v", ok)
	}
}

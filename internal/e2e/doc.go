// Package e2e holds end-to-end tests of the multi-node deployment path: a
// cluster of TCP-joined nodes (internal/comm.TCPNode) each running its own
// core.Runtime, driving a distributed OUPDR run (internal/meshgen.Dist)
// through kill and rejoin, and comparing the produced mesh byte for byte
// against a single-node run. The multi-process variant of the same flow
// lives in cmd/meshnode + cmd/meshctl and runs in CI's e2e-multiproc lane;
// this package keeps the logic under `go test -race`.
package e2e

package e2e

import "testing"

// TestBaselineDeterminism pins the property every cross-run equality check in
// this package rests on: two independent runs of the same problem produce
// identical block dumps. The dump hashes canonical triangle geometry rather
// than mesh encoding bytes — the encoder's output depends on scheduling-
// sensitive ID assignment order, and this test is what catches a regression
// to encoding-sensitive hashing.
func TestBaselineDeterminism(t *testing.T) {
	a := singleNodeBaseline(t)
	b := singleNodeBaseline(t)
	if len(a) != len(b) {
		t.Fatalf("baseline dumped %d blocks, then %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("baseline diverged from itself at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

package e2e

import (
	"sync"
	"testing"
	"time"

	"mrts/internal/comm"
	"mrts/internal/core"
	"mrts/internal/meshgen"
	"mrts/internal/meshstore"
	"mrts/internal/ooc"
	"mrts/internal/sched"
	"mrts/internal/storage"
)

// The N→M restore property: a store written by N nodes restores onto M
// nodes — any M — with the identical canonical MeshHash. The store carries
// the generation meta, blocks are fetched by grid key, and neighbor
// pointers are rewritten against the reading run's placement; nothing in
// the format remembers N.

const (
	nmBlocks   = 4
	nmElements = 4000
)

func nmCfg(nodes, node int) meshgen.DistConfig {
	return meshgen.DistConfig{
		Blocks:         nmBlocks,
		TargetElements: nmElements,
		Nodes:          nodes,
		Node:           node,
	}
}

// nmRuntime builds one in-proc node. A non-nil fault config wraps the swap
// store so every key's first gets/puts fail transiently, with a retry
// budget sized to absorb them.
func nmRuntime(t *testing.T, tr *comm.InProcTransport, n, i int, fault *storage.FaultConfig) (*core.Runtime, *storage.FaultStore) {
	t.Helper()
	var st storage.Store = storage.NewMem()
	var retry storage.RetryPolicy
	var fs *storage.FaultStore
	if fault != nil {
		fc := *fault
		fc.Seed += int64(i) // distinct per-node fault streams
		fs = storage.NewFault(storage.NewMem(), fc)
		st = fs
		retry = storage.RetryPolicy{MaxAttempts: 5, BaseDelay: 50 * time.Microsecond, MaxDelay: time.Millisecond}
	}
	rt := core.NewRuntime(core.Config{
		Endpoint: tr.Endpoint(comm.NodeID(i)),
		Pool:     sched.NewWorkStealing(2),
		Factory:  meshgen.Factory,
		Mem:      ooc.Config{Budget: e2eBudget},
		Store:    st,
		Retry:    retry,
		NumNodes: n,
	})
	t.Cleanup(func() { rt.Close() })
	return rt, fs
}

// requireInjected fails the test unless the fault stores actually injected
// faults — otherwise the under-faults property would pass vacuously.
func requireInjected(t *testing.T, what string, stores []*storage.FaultStore) {
	t.Helper()
	var inj uint64
	for _, fs := range stores {
		if fs != nil {
			s := fs.Stats()
			inj += s.InjectedGets + s.InjectedPuts
		}
	}
	if inj == 0 {
		t.Fatalf("%s: no faults were injected; the swap path never engaged", what)
	}
}

// exportInProc meshes the standard N→M problem on n in-proc nodes and
// streams it into dir, one chunk per node, then merges and returns the
// sealed manifest.
func exportInProc(t *testing.T, n int, dir string, fault *storage.FaultConfig) *meshstore.Manifest {
	t.Helper()
	tr := comm.NewInProc(n, comm.LatencyModel{})
	ds := make([]*meshgen.Dist, n)
	fss := make([]*storage.FaultStore, n)
	for i := 0; i < n; i++ {
		rt, fs := nmRuntime(t, tr, n, i, fault)
		fss[i] = fs
		d, err := meshgen.NewDist(rt, nmCfg(n, i))
		if err != nil {
			t.Fatalf("dist node %d: %v", i, err)
		}
		if err := d.CreateBlocks(); err != nil {
			t.Fatalf("create node %d: %v", i, err)
		}
		ds[i] = d
	}
	barrier := func(f func(d *meshgen.Dist) error) {
		var wg sync.WaitGroup
		errs := make([]error, n)
		for i, d := range ds {
			i, d := i, d
			wg.Add(1)
			go func() {
				defer wg.Done()
				errs[i] = f(d)
			}()
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("node %d: %v", i, err)
			}
		}
	}
	barrier(func(d *meshgen.Dist) error {
		d.PostPhase(0)
		d.WaitPhase()
		if m := d.Mismatches(); m != 0 {
			t.Errorf("%d interface mismatches", m)
		}
		return nil
	})

	ws := make([]*meshstore.Writer, n)
	for i, d := range ds {
		w, err := meshstore.NewWriter(meshstore.WriterConfig{
			Dir: dir, Writer: i, Meta: d.StoreMeta(), Compress: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		ws[i] = w
	}
	i := 0
	barrier(func(d *meshgen.Dist) error {
		w := ws[i]
		i++
		return d.Export(w)
	})
	for _, w := range ws {
		if _, err := w.Finalize(); err != nil {
			t.Fatal(err)
		}
	}
	man, err := meshstore.MergeManifests(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man.Partial || man.MeshHash == "" {
		t.Fatalf("merged %d-writer store is partial", n)
	}
	rep, err := meshstore.Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("%d-writer store verify: %v", n, rep.Problems)
	}
	if fault != nil {
		requireInjected(t, "export", fss)
	}
	return man
}

// restoreInProc rebuilds the store onto m in-proc nodes, dumps, and
// verifies the canonical hash against the store's. Returns the hash.
func restoreInProc(t *testing.T, m int, dir string, fault *storage.FaultConfig) string {
	t.Helper()
	st, err := meshstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	tr := comm.NewInProc(m, comm.LatencyModel{})
	ds := make([]*meshgen.Dist, m)
	fss := make([]*storage.FaultStore, m)
	for i := 0; i < m; i++ {
		rt, fs := nmRuntime(t, tr, m, i, fault)
		fss[i] = fs
		d, err := meshgen.NewDist(rt, nmCfg(m, i))
		if err != nil {
			t.Fatalf("dist node %d: %v", i, err)
		}
		if err := d.RestoreFromStore(st); err != nil {
			t.Fatalf("restore node %d: %v", i, err)
		}
		ds[i] = d
	}
	dumps := make([][]meshgen.BlockDump, m)
	var wg sync.WaitGroup
	for i, d := range ds {
		i, d := i, d
		wg.Add(1)
		go func() {
			defer wg.Done()
			dumps[i] = d.Dump()
		}()
	}
	wg.Wait()
	var all []meshgen.BlockDump
	for _, part := range dumps {
		all = append(all, part...)
	}
	if len(all) != nmBlocks*nmBlocks {
		t.Fatalf("restored cluster dumped %d blocks, want %d", len(all), nmBlocks*nmBlocks)
	}
	got := meshgen.MeshHashOf(all)
	if got != st.MeshHash() {
		t.Fatalf("restore onto %d nodes: MeshHash %s != store %s", m, got, st.MeshHash())
	}
	if fault != nil {
		requireInjected(t, "restore", fss)
	}
	return got
}

// TestRestoreNtoM: 3 writers restore onto 2 nodes, 1 writer restores onto
// 4 — all four meshes byte-identical by canonical hash.
func TestRestoreNtoM(t *testing.T) {
	threeDir, oneDir := t.TempDir(), t.TempDir()
	man3 := exportInProc(t, 3, threeDir, nil)
	man1 := exportInProc(t, 1, oneDir, nil)
	if man3.MeshHash != man1.MeshHash {
		t.Fatalf("store hash depends on writer count: 3 writers %s, 1 writer %s",
			man3.MeshHash, man1.MeshHash)
	}
	h32 := restoreInProc(t, 2, threeDir, nil)
	h14 := restoreInProc(t, 4, oneDir, nil)
	if h32 != h14 {
		t.Fatalf("3→2 hash %s != 1→4 hash %s", h32, h14)
	}
}

// TestRestoreNtoMUnderTransientFaults: the same property with every swap
// key's first operations failing transiently during both the writing run
// and the restore — the retry budget absorbs the faults and the hashes
// still match.
func TestRestoreNtoMUnderTransientFaults(t *testing.T) {
	cleanDir, faultDir := t.TempDir(), t.TempDir()
	clean := exportInProc(t, 3, cleanDir, nil)
	faulty := exportInProc(t, 3, faultDir,
		&storage.FaultConfig{Seed: 11, FailFirstGets: 2, FailFirstPuts: 2})
	if faulty.MeshHash != clean.MeshHash {
		t.Fatalf("transient faults changed the exported mesh: %s vs %s",
			faulty.MeshHash, clean.MeshHash)
	}
	restoreInProc(t, 2, faultDir,
		&storage.FaultConfig{Seed: 13, FailFirstGets: 2, FailFirstPuts: 2})
}

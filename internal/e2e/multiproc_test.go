package e2e

import (
	"sync"
	"testing"
	"time"

	"mrts/internal/cluster"
	"mrts/internal/comm"
	"mrts/internal/core"
	"mrts/internal/meshgen"
	"mrts/internal/ooc"
	"mrts/internal/sched"
	"mrts/internal/storage"
)

const (
	e2eNodes    = 3
	e2eBlocks   = 6
	e2eElements = 3000
	e2ePhases   = 3
	e2eBudget   = 48 << 10 // small enough that blocks swap
)

func distCfg(nodes, node int) meshgen.DistConfig {
	return meshgen.DistConfig{
		Blocks:         e2eBlocks,
		TargetElements: e2eElements,
		Nodes:          nodes,
		Node:           node,
		Phases:         e2ePhases,
	}
}

// worker is one node of the in-process "multi-process" cluster: its own
// transport endpoint, runtime and SPMD driver — everything a meshnode
// process owns, minus the OS process boundary.
type worker struct {
	tn *comm.TCPNode
	rt *core.Runtime
	d  *meshgen.Dist
}

func startWorker(t *testing.T, seed string, want comm.NodeID, routing cluster.RoutingKind) *worker {
	t.Helper()
	// The seed refuses to reissue an ID while it still believes the old
	// incarnation is up (leave/expiry processing races the rejoin), so a
	// relaunching node retries the join until the seed lets it back in —
	// exactly what cmd/meshnode does after a crash.
	var tn *comm.TCPNode
	var err error
	for attempt := 0; attempt < 100; attempt++ {
		tn, err = comm.StartTCPNode(comm.TCPNodeConfig{
			Listen:         "127.0.0.1:0",
			Seed:           seed,
			WantID:         want,
			HeartbeatEvery: 20 * time.Millisecond,
			ExpireAfter:    250 * time.Millisecond,
		})
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("start node: %v", err)
	}
	pl, err := meshgen.NewPlacement(distCfg(e2eNodes, int(tn.Node())))
	if err != nil {
		t.Fatalf("placement node %d: %v", tn.Node(), err)
	}
	cc := core.Config{
		Endpoint: tn,
		Pool:     sched.NewWorkStealing(2),
		Factory:  meshgen.Factory,
		Mem:      ooc.Config{Budget: e2eBudget},
		Store:    storage.NewMem(),
	}
	// Mirror cmd/meshnode's locator wiring: under placed routing, the
	// placement ring doubles as the runtime's locator, keyed by the block
	// names the placement hashed (not the canonical pointer keys).
	if routing == cluster.RoutePlaced {
		cc.Locator = cluster.NewPlacedLocatorKeyed(pl.Dir, core.NodeID(tn.Node()), pl.Key)
	}
	rt := core.NewRuntime(cc)
	d, err := meshgen.NewDistFrom(rt, distCfg(e2eNodes, int(tn.Node())), pl)
	if err != nil {
		t.Fatalf("dist node %d: %v", tn.Node(), err)
	}
	return &worker{tn: tn, rt: rt, d: d}
}

// runPhase executes one SPMD phase barrier across all workers.
func runPhase(ws []*worker, k int) {
	var wg sync.WaitGroup
	for _, w := range ws {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.d.PostPhase(k)
			w.d.WaitPhase()
		}()
	}
	wg.Wait()
}

// dumpAll runs the dump barrier on all workers and merges the results.
func dumpAll(ws []*worker) []meshgen.BlockDump {
	out := make([][]meshgen.BlockDump, len(ws))
	var wg sync.WaitGroup
	for i, w := range ws {
		i, w := i, w
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i] = w.d.Dump()
		}()
	}
	wg.Wait()
	var all []meshgen.BlockDump
	for _, part := range out {
		all = append(all, part...)
	}
	return all
}

// singleNodeBaseline runs the same problem on one node over the in-process
// transport and returns its dump.
func singleNodeBaseline(t *testing.T) []meshgen.BlockDump {
	t.Helper()
	tr := comm.NewInProc(1, comm.LatencyModel{})
	rt := core.NewRuntime(core.Config{
		Endpoint: tr.Endpoint(0),
		Pool:     sched.NewWorkStealing(2),
		Factory:  meshgen.Factory,
		Mem:      ooc.Config{Budget: e2eBudget},
		Store:    storage.NewMem(),
	})
	defer rt.Close()
	d, err := meshgen.NewDist(rt, distCfg(1, 0))
	if err != nil {
		t.Fatalf("baseline dist: %v", err)
	}
	if err := d.CreateBlocks(); err != nil {
		t.Fatalf("baseline create: %v", err)
	}
	for k := 0; k < e2ePhases; k++ {
		d.PostPhase(k)
		d.WaitPhase()
	}
	if d.Mismatches() != 0 {
		t.Fatalf("baseline saw %d interface mismatches", d.Mismatches())
	}
	return d.Dump()
}

// TestKillRejoinMatchesSingleNode is the e2e property the multi-process
// deployment is built around: a 3-node TCP cluster that loses one node after
// the first phase — its state checkpointed at the barrier, the node torn
// down, a fresh incarnation rejoined under the same node ID at a new address
// and restored — produces a mesh byte-identical to a single-node run, with
// every block reported exactly once (zero objects lost).
func TestKillRejoinMatchesSingleNode(t *testing.T) {
	// Both routing modes the CI lane cares about: lazy is the paper's
	// default, placed is what cmd/meshctl pins (and what the anchor-keyed
	// locator wiring must survive across the kill/rejoin).
	t.Run("lazy", func(t *testing.T) { killRejoin(t, cluster.RouteLazy) })
	t.Run("placed", func(t *testing.T) { killRejoin(t, cluster.RoutePlaced) })
}

func killRejoin(t *testing.T, routing cluster.RoutingKind) {
	base := singleNodeBaseline(t)
	if len(base) != e2eBlocks*e2eBlocks {
		t.Fatalf("baseline dumped %d blocks, want %d", len(base), e2eBlocks*e2eBlocks)
	}

	seed := startWorker(t, "", 0, routing)
	w1 := startWorker(t, seed.tn.Addr(), -1, routing)
	w2 := startWorker(t, seed.tn.Addr(), -1, routing)
	ws := []*worker{seed, w1, w2}
	for _, w := range ws {
		if err := w.tn.WaitMembers(e2eNodes, 5*time.Second); err != nil {
			t.Fatalf("node %d membership: %v", w.tn.Node(), err)
		}
	}
	if w2.tn.Node() != 2 {
		t.Fatalf("sequential join assigned node %d, want 2", w2.tn.Node())
	}
	for _, w := range ws {
		if err := w.d.CreateBlocks(); err != nil {
			t.Fatalf("node %d create: %v", w.tn.Node(), err)
		}
	}

	runPhase(ws, 0)

	// Kill node 2 at the barrier: checkpoint (what a worker process does at
	// every phase boundary), then tear the whole node down.
	ck := storage.NewMem()
	if err := w2.d.Checkpoint(ck, "ck"); err != nil {
		t.Fatalf("checkpoint node 2: %v", err)
	}
	if err := w2.rt.Close(); err != nil {
		t.Fatalf("close runtime 2: %v", err)
	}
	w2.tn.Close()

	// Rejoin under the same node ID at a fresh address and restore.
	w2b := startWorker(t, seed.tn.Addr(), 2, routing)
	if w2b.tn.Node() != 2 {
		t.Fatalf("rejoin assigned node %d, want 2", w2b.tn.Node())
	}
	if err := w2b.d.Restore(ck, "ck"); err != nil {
		t.Fatalf("restore node 2: %v", err)
	}
	if n, want := w2b.rt.NumLocalObjects(), w2b.d.NumLocalBlocks(); n != want {
		t.Fatalf("restored node hosts %d blocks, placement assigns %d", n, want)
	}
	ws[2] = w2b
	for _, w := range ws {
		if err := w.tn.WaitMembers(e2eNodes, 5*time.Second); err != nil {
			t.Fatalf("node %d membership after rejoin: %v", w.tn.Node(), err)
		}
	}

	for k := 1; k < e2ePhases; k++ {
		runPhase(ws, k)
	}
	for _, w := range ws {
		if w.d.Mismatches() != 0 {
			t.Errorf("node %d saw %d interface mismatches", w.tn.Node(), w.d.Mismatches())
		}
	}

	got := dumpAll(ws)
	if len(got) != len(base) {
		t.Fatalf("cluster dumped %d blocks, baseline %d (object lost or duplicated)", len(got), len(base))
	}
	seen := make(map[[2]int]meshgen.BlockDump, len(got))
	for _, b := range got {
		key := [2]int{b.J, b.I}
		if _, dup := seen[key]; dup {
			t.Fatalf("block (%d,%d) reported twice", b.I, b.J)
		}
		seen[key] = b
	}
	for _, b := range base {
		g, ok := seen[[2]int{b.J, b.I}]
		if !ok {
			t.Fatalf("block (%d,%d) missing from cluster dump", b.I, b.J)
		}
		if g != b {
			t.Fatalf("block (%d,%d) diverged: cluster %v, baseline %v", b.I, b.J, g, b)
		}
	}

	for _, w := range ws {
		w.rt.Close()
		w.tn.Close()
	}
}

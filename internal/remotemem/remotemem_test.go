package remotemem

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"mrts/internal/comm"
	"mrts/internal/storage"
)

func pair(t *testing.T) (*Client, *Server, func()) {
	t.Helper()
	tr := comm.NewInProc(2, comm.LatencyModel{})
	srv := NewServer(tr.Endpoint(1))
	cli := NewClient(tr.Endpoint(0), 1)
	return cli, srv, func() { tr.Close() }
}

func TestPutGetDeleteHas(t *testing.T) {
	cli, _, done := pair(t)
	defer done()
	if _, err := cli.Get("missing"); err != storage.ErrNotFound {
		t.Fatalf("Get(missing) = %v", err)
	}
	if cli.Has("k") {
		t.Fatal("Has before Put")
	}
	if err := cli.Put("k", []byte("remote bytes")); err != nil {
		t.Fatal(err)
	}
	if !cli.Has("k") {
		t.Fatal("Has after Put")
	}
	got, err := cli.Get("k")
	if err != nil || !bytes.Equal(got, []byte("remote bytes")) {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if err := cli.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if cli.Has("k") {
		t.Fatal("Has after Delete")
	}
}

func TestServerStats(t *testing.T) {
	cli, srv, done := pair(t)
	defer done()
	cli.Put("a", make([]byte, 100))
	cli.Get("a")
	s := srv.Stats()
	if s.Puts != 1 || s.Gets != 1 || s.BytesWritten != 100 {
		t.Fatalf("stats %+v", s)
	}
}

func TestConcurrentClients(t *testing.T) {
	tr := comm.NewInProc(4, comm.LatencyModel{})
	defer tr.Close()
	NewServer(tr.Endpoint(3))
	var wg sync.WaitGroup
	for n := 0; n < 3; n++ {
		cli := NewClient(tr.Endpoint(comm.NodeID(n)), 3)
		wg.Add(1)
		go func(n int, cli *Client) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				k := storage.Key(fmt.Sprintf("n%d-%d", n, i))
				if err := cli.Put(k, []byte{byte(n), byte(i)}); err != nil {
					t.Error(err)
					return
				}
				d, err := cli.Get(k)
				if err != nil || d[0] != byte(n) || d[1] != byte(i) {
					t.Errorf("roundtrip %s: %v %v", k, d, err)
					return
				}
			}
		}(n, cli)
	}
	wg.Wait()
}

func TestClientClosed(t *testing.T) {
	cli, _, done := pair(t)
	defer done()
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cli.Put("k", nil); err == nil {
		t.Fatal("Put after Close should fail")
	}
}

func TestSelfHostedServer(t *testing.T) {
	// Client and server sharing one endpoint (a node spilling to itself —
	// degenerate but must not deadlock).
	tr := comm.NewInProc(1, comm.LatencyModel{})
	defer tr.Close()
	NewServer(tr.Endpoint(0))
	cli := NewClient(tr.Endpoint(0), 0)
	if err := cli.Put("x", []byte("self")); err != nil {
		t.Fatal(err)
	}
	got, err := cli.Get("x")
	if err != nil || string(got) != "self" {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestLargeBlobs(t *testing.T) {
	cli, _, done := pair(t)
	defer done()
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i * 31)
	}
	if err := cli.Put("big", big); err != nil {
		t.Fatal(err)
	}
	got, err := cli.Get("big")
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("1MB roundtrip failed: len=%d err=%v", len(got), err)
	}
}

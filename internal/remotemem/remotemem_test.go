package remotemem

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"

	"mrts/internal/comm"
	"mrts/internal/storage"
)

func pair(t *testing.T) (*Client, *Server, func()) {
	t.Helper()
	tr := comm.NewInProc(2, comm.LatencyModel{})
	srv := NewServer(tr.Endpoint(1))
	cli := NewClient(tr.Endpoint(0), 1)
	return cli, srv, func() { tr.Close() }
}

func TestPutGetDeleteHas(t *testing.T) {
	cli, _, done := pair(t)
	defer done()
	if _, err := cli.Get("missing"); err != storage.ErrNotFound {
		t.Fatalf("Get(missing) = %v", err)
	}
	if cli.Has("k") {
		t.Fatal("Has before Put")
	}
	if err := cli.Put("k", []byte("remote bytes")); err != nil {
		t.Fatal(err)
	}
	if !cli.Has("k") {
		t.Fatal("Has after Put")
	}
	got, err := cli.Get("k")
	if err != nil || !bytes.Equal(got, []byte("remote bytes")) {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if err := cli.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if cli.Has("k") {
		t.Fatal("Has after Delete")
	}
}

func TestServerStats(t *testing.T) {
	cli, srv, done := pair(t)
	defer done()
	cli.Put("a", make([]byte, 100))
	cli.Get("a")
	s := srv.Stats()
	if s.Puts != 1 || s.Gets != 1 || s.BytesWritten != 100 {
		t.Fatalf("stats %+v", s)
	}
}

func TestConcurrentClients(t *testing.T) {
	tr := comm.NewInProc(4, comm.LatencyModel{})
	defer tr.Close()
	NewServer(tr.Endpoint(3))
	var wg sync.WaitGroup
	for n := 0; n < 3; n++ {
		cli := NewClient(tr.Endpoint(comm.NodeID(n)), 3)
		wg.Add(1)
		go func(n int, cli *Client) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				k := storage.Key(fmt.Sprintf("n%d-%d", n, i))
				if err := cli.Put(k, []byte{byte(n), byte(i)}); err != nil {
					t.Error(err)
					return
				}
				d, err := cli.Get(k)
				if err != nil || d[0] != byte(n) || d[1] != byte(i) {
					t.Errorf("roundtrip %s: %v %v", k, d, err)
					return
				}
			}
		}(n, cli)
	}
	wg.Wait()
}

func TestClientClosed(t *testing.T) {
	cli, _, done := pair(t)
	defer done()
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cli.Put("k", nil); err == nil {
		t.Fatal("Put after Close should fail")
	}
}

func TestSelfHostedServer(t *testing.T) {
	// Client and server sharing one endpoint (a node spilling to itself —
	// degenerate but must not deadlock).
	tr := comm.NewInProc(1, comm.LatencyModel{})
	defer tr.Close()
	NewServer(tr.Endpoint(0))
	cli := NewClient(tr.Endpoint(0), 0)
	if err := cli.Put("x", []byte("self")); err != nil {
		t.Fatal(err)
	}
	got, err := cli.Get("x")
	if err != nil || string(got) != "self" {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestLargeBlobs(t *testing.T) {
	cli, _, done := pair(t)
	defer done()
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i * 31)
	}
	if err := cli.Put("big", big); err != nil {
		t.Fatal(err)
	}
	got, err := cli.Get("big")
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("1MB roundtrip failed: len=%d err=%v", len(got), err)
	}
}

func TestBadRequestAnswered(t *testing.T) {
	// A malformed request must get a stBadRequest response, never a silent
	// drop: a client blocked on wireResp would wedge forever. Drive the
	// wire directly with truncated and corrupt payloads.
	tr := comm.NewInProc(2, comm.LatencyModel{})
	defer tr.Close()
	srv := NewServer(tr.Endpoint(1))
	cli := NewClient(tr.Endpoint(0), 1)

	send := func(raw []byte) {
		t.Helper()
		if err := tr.Endpoint(0).Send(1, 1001, raw); err != nil {
			t.Fatal(err)
		}
	}
	// frame builds a request with op, a reqID far above anything the
	// client's counter will reach (so the stBadRequest replies never
	// collide with real pending calls), and n total bytes.
	frame := func(op byte, n int) []byte {
		raw := make([]byte, n)
		raw[0] = op
		if n >= 9 {
			binary.LittleEndian.PutUint64(raw[1:9], 1<<40+uint64(n))
		}
		return raw
	}
	// Unanswerable: too short to carry a request ID. Counted, not replied.
	send([]byte{opPut, 1, 2})
	// Routable but truncated: no key length.
	send(frame(opGet, 10))
	// Key length pointing past the payload.
	raw := frame(opGet, 13)
	raw[9] = 0xff // keyLen = 255 with a 0-byte remainder
	send(raw)
	// Data length pointing past the payload (the latent slice-panic shape).
	raw = frame(opPut, 18)
	raw[9] = 1     // keyLen = 1, key at [13:14]
	raw[14] = 0xff // dataLen = 255 with only 0 bytes of data present
	send(raw)
	// keyLen = 0xFFFFFFFF: naive 13+keyLen+4 arithmetic overflows negative
	// on 32-bit platforms and sails past the bounds check into a slice
	// panic; the check must bound the length before doing any math.
	raw = frame(opGet, 17)
	raw[9], raw[10], raw[11], raw[12] = 0xff, 0xff, 0xff, 0xff
	send(raw)
	// The same overflow shape on the data length, behind a valid key.
	raw = frame(opPut, 18)
	raw[9] = 1
	raw[14], raw[15], raw[16], raw[17] = 0xff, 0xff, 0xff, 0xff
	send(raw)
	// Unknown opcode with a well-formed frame.
	send(frame(0x7f, 17))

	// The server must still be healthy for real traffic — this Put would
	// wedge if any of the frames above stalled the endpoint's dispatcher.
	if err := cli.Put("alive", []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if got := srv.Stats().BadRequests; got != 7 {
		t.Fatalf("BadRequests = %d, want 7", got)
	}
}

func TestCapacityCap(t *testing.T) {
	tr := comm.NewInProc(2, comm.LatencyModel{})
	defer tr.Close()
	srv := NewServerCap(tr.Endpoint(1), 100)
	cli := NewClient(tr.Endpoint(0), 1)
	if err := cli.Put("a", make([]byte, 60)); err != nil {
		t.Fatal(err)
	}
	err := cli.Put("b", make([]byte, 50))
	if !errors.Is(err, storage.ErrCapacity) {
		t.Fatalf("over-lease Put = %v, want ErrCapacity", err)
	}
	// Same-key overwrite within the lease is fine (replaces, not adds).
	if err := cli.Put("a", make([]byte, 90)); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.RejectedPuts != 1 || st.BytesResident != 90 || st.Capacity != 100 {
		t.Fatalf("stats: %+v", st)
	}
	// ErrCapacity is permanent: retry layers must hand it up, not spin.
	if !storage.IsPermanent(err) {
		t.Fatal("ErrCapacity must classify as permanent")
	}
}

func TestConcurrentClientsCapacity(t *testing.T) {
	// N nodes hammer one capped server with interleaved Put/Get/Delete on
	// overlapping keys; the lease must never be exceeded and every accepted
	// write must round-trip. Runs in the -race matrix.
	const (
		clients = 4
		rounds  = 150
		keys    = 12
		lease   = 4 * 1024
	)
	tr := comm.NewInProc(clients+1, comm.LatencyModel{})
	defer tr.Close()
	srv := NewServerCap(tr.Endpoint(comm.NodeID(clients)), lease)

	stop := make(chan struct{})
	var spectator sync.WaitGroup
	spectator.Add(1)
	go func() {
		defer spectator.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if st := srv.Stats(); st.BytesResident > lease {
				t.Errorf("lease exceeded mid-traffic: %+v", st)
				return
			}
		}
	}()

	cls := make([]*Client, clients)
	for n := range cls {
		cls[n] = NewClient(tr.Endpoint(comm.NodeID(n)), comm.NodeID(clients))
	}
	var wg sync.WaitGroup
	for n := 0; n < clients; n++ {
		wg.Add(1)
		go func(n int, cli *Client) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				k := storage.Key(fmt.Sprintf("k%d", (n*5+i)%keys))
				switch i % 4 {
				case 0, 1:
					err := cli.Put(k, bytes.Repeat([]byte{byte(n)}, 500+(i%7)*150))
					if err != nil && !errors.Is(err, storage.ErrCapacity) {
						t.Errorf("put %q: %v", k, err)
						return
					}
				case 2:
					if _, err := cli.Get(k); err != nil && err != storage.ErrNotFound {
						t.Errorf("get %q: %v", k, err)
						return
					}
				default:
					if err := cli.Delete(k); err != nil {
						t.Errorf("delete %q: %v", k, err)
						return
					}
				}
			}
		}(n, cls[n])
	}
	wg.Wait()
	close(stop)
	spectator.Wait()
	// Deterministic lease pressure: a blob larger than the whole lease can
	// never be admitted, whatever residency the hammer left behind.
	if err := cls[0].Put("too-big", make([]byte, lease+1)); !errors.Is(err, storage.ErrCapacity) {
		t.Fatalf("over-lease Put = %v, want ErrCapacity", err)
	}
	st := srv.Stats()
	if st.BytesResident > lease {
		t.Fatalf("lease exceeded at rest: %+v", st)
	}
	if st.RejectedPuts == 0 {
		t.Fatalf("no Put ever hit the lease: %+v", st)
	}
	if st.BadRequests != 0 {
		t.Fatalf("well-formed traffic counted as bad requests: %+v", st)
	}
}

// Package remotemem implements the extension sketched in the paper's
// conclusion: using "the memory of remote nodes as out-of-core media". A
// Server turns one node into a memory server; a Client is a storage.Store
// whose blobs live in that server's RAM, reached through the same one-sided
// messaging layer the runtime uses. Plugging a Client in as a node's store
// lets applications with large memory needs but limited parallelism spill to
// a remote node instead of local disk, with no changes to the algorithm.
package remotemem

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"mrts/internal/bufpool"
	"mrts/internal/comm"
	"mrts/internal/storage"
)

// Wire handler IDs (distinct from the core runtime's 1-5 range; both sets
// coexist on one endpoint).
const (
	wireReq  uint32 = 1001
	wireResp uint32 = 1002
)

// Operation codes.
const (
	opPut byte = iota + 1
	opGet
	opDelete
	opHas
)

// Response status codes.
const (
	stOK byte = iota + 1
	stNotFound
	// stBadRequest reports a short, corrupt or unrecognized request. The
	// server must answer it — a silent drop would leave the client blocked
	// on wireResp forever.
	stBadRequest
	// stFull reports a Put rejected by the server's capacity lease.
	stFull
)

// Server serves remote store requests from an in-memory map. Create it on
// the node donating its memory.
type Server struct {
	ep  comm.Endpoint
	mem *storage.MemStore

	badReqs atomic.Uint64
}

// NewServer attaches an unbounded memory server to ep.
func NewServer(ep comm.Endpoint) *Server { return NewServerCap(ep, 0) }

// NewServerCap attaches a memory server donating at most capacity bytes
// (<= 0 means unbounded). Writes beyond the lease are rejected loudly with
// stFull — the donor node's own budget is never silently overrun.
func NewServerCap(ep comm.Endpoint, capacity int64) *Server {
	s := &Server{ep: ep, mem: storage.NewMemCap(capacity)}
	ep.Register(wireReq, s.onRequest)
	return s
}

// ServerStats extends the memory store counters with the server's protocol
// and capacity accounting.
type ServerStats struct {
	storage.Stats
	// BadRequests counts malformed requests answered with stBadRequest
	// (plus the unanswerable ones too short to carry a request ID).
	BadRequests uint64
	// RejectedPuts counts writes refused by the capacity lease.
	RejectedPuts uint64
	// BytesResident is the payload currently held; Capacity the lease
	// (<= 0 means unbounded).
	BytesResident int64
	Capacity      int64
}

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Stats:         s.mem.Stats(),
		BadRequests:   s.badReqs.Load(),
		RejectedPuts:  s.mem.Rejected(),
		BytesResident: s.mem.BytesResident(),
		Capacity:      s.mem.Capacity(),
	}
}

func (s *Server) onRequest(msg comm.Message) {
	if len(msg.Payload) < 9 {
		// Too short to even carry a request ID: unanswerable, but never
		// silent — it still counts.
		s.badReqs.Add(1)
		return
	}
	reqID := binary.LittleEndian.Uint64(msg.Payload[1:9])
	if len(msg.Payload) < 13 {
		s.reject(msg.From, reqID)
		return
	}
	op := msg.Payload[0]
	// Bound the lengths against the payload before any arithmetic: on 32-bit
	// platforms 13+keyLen+4 can overflow negative for a hostile keyLen and
	// sneak past the check into a panicking slice expression.
	keyLen := int(binary.LittleEndian.Uint32(msg.Payload[9:13]))
	if keyLen < 0 || keyLen > len(msg.Payload)-17 {
		s.reject(msg.From, reqID)
		return
	}
	key := storage.Key(msg.Payload[13 : 13+keyLen])
	dataLen := int(binary.LittleEndian.Uint32(msg.Payload[13+keyLen : 17+keyLen]))
	if dataLen < 0 || dataLen > len(msg.Payload)-17-keyLen {
		s.reject(msg.From, reqID)
		return
	}
	data := msg.Payload[17+keyLen : 17+keyLen+dataLen]

	status := stOK
	var out []byte
	switch op {
	case opPut:
		if err := s.mem.Put(key, data); err != nil {
			if errors.Is(err, storage.ErrCapacity) {
				status = stFull
			} else {
				status = stNotFound
			}
		}
	case opGet:
		d, err := s.mem.GetBuf(key)
		if err != nil {
			status = stNotFound
		} else {
			out = d
			defer s.mem.ReleaseBuf(d) // respond copies out into the frame
		}
	case opDelete:
		_ = s.mem.Delete(key)
	case opHas:
		if !s.mem.Has(key) {
			status = stNotFound
		}
	default:
		s.badReqs.Add(1)
		status = stBadRequest
	}

	s.respond(msg.From, reqID, status, out)
}

// reject answers a malformed-but-routable request with stBadRequest.
func (s *Server) reject(to comm.NodeID, reqID uint64) {
	s.badReqs.Add(1)
	s.respond(to, reqID, stBadRequest, nil)
}

func (s *Server) respond(to comm.NodeID, reqID uint64, status byte, out []byte) {
	// The response frame is pooled: the client's onResponse copies what it
	// needs out of the payload, so the transport recycles the frame after
	// the handler returns.
	resp := bufpool.Get(9 + 4 + len(out))
	binary.LittleEndian.PutUint64(resp[0:8], reqID)
	resp[8] = status
	binary.LittleEndian.PutUint32(resp[9:13], uint32(len(out)))
	copy(resp[13:], out)
	_ = comm.SendPooled(s.ep, to, wireResp, resp)
}

// Client is a storage.Store backed by a remote Server's memory.
type Client struct {
	ep     comm.Endpoint
	server comm.NodeID

	mu      sync.Mutex
	next    uint64
	pending map[uint64]chan response
	closed  bool
}

type response struct {
	status byte
	data   []byte
}

// NewClient attaches a remote store client to ep, talking to the server on
// the given node.
func NewClient(ep comm.Endpoint, server comm.NodeID) *Client {
	c := &Client{ep: ep, server: server, pending: make(map[uint64]chan response)}
	ep.Register(wireResp, c.onResponse)
	return c
}

func (c *Client) onResponse(msg comm.Message) {
	if len(msg.Payload) < 13 {
		return
	}
	reqID := binary.LittleEndian.Uint64(msg.Payload[0:8])
	status := msg.Payload[8]
	n := int(binary.LittleEndian.Uint32(msg.Payload[9:13]))
	if n < 0 || n > len(msg.Payload)-13 { // overflow-safe bound, as onRequest
		return
	}
	var data []byte
	if n > 0 {
		// Copied into a pooled buffer the caller of Get comes to own; the
		// frame itself belongs to the transport.
		data = bufpool.Get(n)
		copy(data, msg.Payload[13:13+n])
	}
	c.mu.Lock()
	ch := c.pending[reqID]
	delete(c.pending, reqID)
	c.mu.Unlock()
	if ch != nil {
		ch <- response{status: status, data: data}
	} else if data != nil {
		bufpool.Put(data) // waiter already failed by Close
	}
}

// call performs one synchronous request/response round trip.
func (c *Client) call(op byte, key storage.Key, data []byte) (response, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return response{}, storage.ErrClosed
	}
	c.next++
	reqID := c.next
	ch := make(chan response, 1)
	c.pending[reqID] = ch
	c.mu.Unlock()

	// The request frame is pooled; the server's onRequest only reads the
	// payload during the handler, so the transport recycles it afterwards.
	req := bufpool.Get(13 + len(key) + 4 + len(data))
	req[0] = op
	binary.LittleEndian.PutUint64(req[1:9], reqID)
	binary.LittleEndian.PutUint32(req[9:13], uint32(len(key)))
	copy(req[13:], key)
	binary.LittleEndian.PutUint32(req[13+len(key):], uint32(len(data)))
	copy(req[17+len(key):], data)
	if err := comm.SendPooled(c.ep, c.server, wireReq, req); err != nil {
		c.mu.Lock()
		delete(c.pending, reqID)
		c.mu.Unlock()
		return response{}, fmt.Errorf("remotemem: %w", err)
	}
	// A closed channel (not a sent value) means Close failed this waiter:
	// the response was lost or will arrive after the client is gone. Without
	// this distinction a lost frame blocked the caller forever.
	r, ok := <-ch
	if !ok {
		return response{}, fmt.Errorf("remotemem: call %d abandoned: %w", reqID, storage.ErrClosed)
	}
	return r, nil
}

// ErrBadRequest is returned when the server answered stBadRequest: the wire
// payload was malformed — a protocol bug, never retryable.
var ErrBadRequest = fmt.Errorf("remotemem: malformed request: %w", storage.ErrPermanent)

// Put implements storage.Store. A write past the server's lease surfaces as
// storage.ErrCapacity so callers (the tier layer) can place the blob
// elsewhere instead of retrying a hopeless write.
func (c *Client) Put(key storage.Key, data []byte) error {
	r, err := c.call(opPut, key, data)
	if err != nil {
		return err
	}
	switch r.status {
	case stOK:
		return nil
	case stFull:
		return fmt.Errorf("remotemem: put %q (%d bytes): %w", string(key), len(data), storage.ErrCapacity)
	case stBadRequest:
		return ErrBadRequest
	default:
		return fmt.Errorf("remotemem: put %q: server status %d", string(key), r.status)
	}
}

// Get implements storage.Store.
func (c *Client) Get(key storage.Key) ([]byte, error) {
	r, err := c.call(opGet, key, nil)
	if err != nil {
		return nil, err
	}
	if r.status == stBadRequest {
		return nil, ErrBadRequest
	}
	if r.status != stOK {
		return nil, storage.ErrNotFound
	}
	return r.data, nil
}

// Delete implements storage.Store.
func (c *Client) Delete(key storage.Key) error {
	r, err := c.call(opDelete, key, nil)
	if err != nil {
		return err
	}
	if r.status == stBadRequest {
		return ErrBadRequest
	}
	return nil
}

// Has implements storage.Store.
func (c *Client) Has(key storage.Key) bool {
	r, err := c.call(opHas, key, nil)
	return err == nil && r.status == stOK
}

// GetBuf implements storage.BufGetter: the response data is already a
// pooled buffer owned by the caller.
func (c *Client) GetBuf(key storage.Key) ([]byte, error) { return c.Get(key) }

// ReleaseBuf implements storage.BufGetter.
func (c *Client) ReleaseBuf(data []byte) { bufpool.Put(data) }

// Close implements storage.Store. Every in-flight call fails promptly with
// storage.ErrClosed (its channel is closed out from under it — a waiter must
// never outlive the client, or a lost response would strand it forever);
// new calls fail immediately. A response racing with Close is dropped: only
// one of onResponse and Close removes a given waiter from pending, so a
// waiter is either completed or failed, never both.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	for id, ch := range c.pending {
		delete(c.pending, id)
		close(ch)
	}
	c.mu.Unlock()
	return nil
}

var _ storage.Store = (*Client)(nil)

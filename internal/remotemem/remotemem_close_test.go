package remotemem

import (
	"errors"
	"sync"
	"testing"
	"time"

	"mrts/internal/comm"
	"mrts/internal/storage"
)

// TestCloseFailsInFlightCall is the regression test for the lost-response
// hang: a client whose request is never answered (no server registered on
// the peer, so the frame is dropped) used to block in call forever, and
// Close did nothing about it. Close must fail the waiter with ErrClosed.
func TestCloseFailsInFlightCall(t *testing.T) {
	tr := comm.NewInProc(2, comm.LatencyModel{})
	defer tr.Close()
	cli := NewClient(tr.Endpoint(0), 1) // node 1 runs no server

	errc := make(chan error, 1)
	go func() {
		_, err := cli.Get("k")
		errc <- err
	}()

	// Wait until the call is actually in flight (registered in pending).
	deadline := time.Now().Add(5 * time.Second)
	for {
		cli.mu.Lock()
		n := len(cli.pending)
		cli.mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("call never became pending")
		}
		time.Sleep(time.Millisecond)
	}

	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if !errors.Is(err, storage.ErrClosed) {
			t.Fatalf("in-flight Get returned %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight Get still blocked after Close")
	}

	// New calls after Close fail immediately.
	if _, err := cli.Get("k"); !errors.Is(err, storage.ErrClosed) {
		t.Fatalf("Get after Close = %v, want ErrClosed", err)
	}
}

// TestCloseRacesManyInFlightCalls hammers Close against a storm of calls
// whose responses are lost; every caller must come back with ErrClosed and
// nothing may deadlock or double-complete (run under -race in CI).
func TestCloseRacesManyInFlightCalls(t *testing.T) {
	tr := comm.NewInProc(2, comm.LatencyModel{})
	defer tr.Close()
	cli := NewClient(tr.Endpoint(0), 1)

	const callers = 16
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = cli.Get("k")
		}(i)
	}
	time.Sleep(5 * time.Millisecond) // let a prefix of the calls get in flight
	cli.Close()
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, storage.ErrClosed) {
			t.Fatalf("caller %d: %v, want ErrClosed", i, err)
		}
	}
}

// TestCloseRacesResponseDelivery closes the client while a real server is
// answering: each call must either complete normally or fail with ErrClosed
// — never hang, never observe a half-delivered response.
func TestCloseRacesResponseDelivery(t *testing.T) {
	tr := comm.NewInProc(2, comm.LatencyModel{})
	defer tr.Close()
	NewServer(tr.Endpoint(1))
	cli := NewClient(tr.Endpoint(0), 1)
	if err := cli.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				d, err := cli.Get("k")
				if err != nil {
					if !errors.Is(err, storage.ErrClosed) {
						t.Errorf("Get: %v", err)
					}
					return
				}
				if string(d) != "v" {
					t.Errorf("Get = %q", d)
					return
				}
			}
		}()
	}
	time.Sleep(2 * time.Millisecond)
	cli.Close()
	wg.Wait()
}

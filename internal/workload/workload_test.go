package workload

import (
	"math"
	"testing"

	"mrts/internal/delaunay"
	"mrts/internal/geom"
	"mrts/internal/mesh"
)

func meshAll(t *testing.T, p *delaunay.PSLG, opts delaunay.Options) *mesh.Mesh {
	t.Helper()
	m, _, err := delaunay.BuildCDT(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := delaunay.Refine(m, opts); err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	return m
}

func area(m *mesh.Mesh) float64 {
	var a float64
	m.ForEachTri(func(id mesh.TriID, _ mesh.Tri) { a += m.Triangle(id).Area() })
	return a
}

func TestUnitSquare(t *testing.T) {
	m := meshAll(t, UnitSquare(), delaunay.Options{MaxArea: 0.01})
	if got := area(m); math.Abs(got-1) > 1e-9 {
		t.Errorf("area = %v", got)
	}
}

func TestRectangle(t *testing.T) {
	m := meshAll(t, Rectangle(2, 3), delaunay.Options{MaxArea: 0.05})
	if got := area(m); math.Abs(got-6) > 1e-9 {
		t.Errorf("area = %v", got)
	}
}

func TestPolygonArea(t *testing.T) {
	n := 64
	m := meshAll(t, Polygon(n, 1, geom.Pt(0, 0)), delaunay.Options{MaxArea: 0.01})
	want := float64(n) / 2 * math.Sin(2*math.Pi/float64(n)) // n-gon area
	if got := area(m); math.Abs(got-want) > 1e-6 {
		t.Errorf("area = %v, want %v", got, want)
	}
}

func TestPipeHasHole(t *testing.T) {
	p := Pipe(48, 1.0, 0.4, geom.Pt(0, 0))
	m := meshAll(t, p, delaunay.Options{MaxArea: 0.01})
	outer := 48.0 / 2 * math.Sin(2*math.Pi/48)
	inner := outer * 0.4 * 0.4
	want := outer - inner
	if got := area(m); math.Abs(got-want) > 1e-6 {
		t.Errorf("area = %v, want %v (annulus)", got, want)
	}
	// The hole center must not be inside any triangle.
	loc := m.Locate(geom.Pt(0, 0), mesh.NoTri)
	if loc.Kind != mesh.LocateFailed {
		t.Errorf("hole center located inside mesh: %+v", loc)
	}
	// Degenerate n is clamped.
	if got := Pipe(3, 1, 0.5, geom.Pt(0, 0)); len(got.Points) != 16 {
		t.Errorf("clamped pipe should have 2×8 points, got %d", len(got.Points))
	}
}

func TestSquareWithHoles(t *testing.T) {
	p := SquareWithHoles(3)
	m := meshAll(t, p, delaunay.Options{MaxArea: 0.005})
	got := area(m)
	if got >= 1 || got < 0.9 {
		t.Errorf("area = %v, want slightly under 1", got)
	}
	if len(p.Holes) != 3 {
		t.Errorf("holes = %d", len(p.Holes))
	}
}

func TestGear(t *testing.T) {
	p := Gear(8, 1, 0.7, geom.Pt(0, 0))
	if len(p.Points) != 16 {
		t.Fatalf("points = %d", len(p.Points))
	}
	m := meshAll(t, p, delaunay.Options{MaxArea: 0.01})
	if a := area(m); a <= 0 {
		t.Errorf("area = %v", a)
	}
	if got := Gear(1, 1, 0.5, geom.Pt(0, 0)); len(got.Points) != 6 {
		t.Errorf("clamped gear should have 6 points, got %d", len(got.Points))
	}
}

func TestSizeFuncs(t *testing.T) {
	u := Uniform(0.5)
	if u(geom.Pt(3, 4)) != 0.5 {
		t.Error("Uniform should be constant")
	}
	g := GradedRadial(geom.Pt(0, 0), 0.1, 0.2)
	if got := g(geom.Pt(0, 0)); got != 0.1 {
		t.Errorf("at center: %v", got)
	}
	if got := g(geom.Pt(3, 4)); math.Abs(got-1.1) > 1e-12 {
		t.Errorf("at dist 5: %v", got)
	}
	a := GradedAnnular(geom.Pt(0, 0), 1, 0.05, 0.3)
	if got := a(geom.Pt(1, 0)); got != 0.05 {
		t.Errorf("on ring: %v", got)
	}
	if got := a(geom.Pt(2, 0)); math.Abs(got-0.35) > 1e-12 {
		t.Errorf("off ring: %v", got)
	}
}

func TestUniformAreaForCalibration(t *testing.T) {
	target := 5000
	bound := UniformAreaFor(target, 1.0)
	m := meshAll(t, UnitSquare(), delaunay.Options{MaxArea: bound})
	got := m.NumTriangles()
	if got < target/2 || got > target*2 {
		t.Errorf("UniformAreaFor(%d) produced %d elements (off by >2x)", target, got)
	}
	if UniformAreaFor(0, 1) != 0 {
		t.Error("zero target should be 0")
	}
}

func TestUniformSizeForCalibration(t *testing.T) {
	target := 5000
	h := UniformSizeFor(target, 1.0)
	m := meshAll(t, UnitSquare(), delaunay.Options{SizeFunc: func(geom.Point) float64 { return h }})
	got := m.NumTriangles()
	if got < target/2 || got > target*2 {
		t.Errorf("UniformSizeFor(%d) produced %d elements (off by >2x)", target, got)
	}
	if UniformSizeFor(0, 1) != 0 {
		t.Error("zero target should be 0")
	}
}

// Package workload generates the input domains (PSLGs) and sizing functions
// used by the evaluation: the unit square of the UPDR experiments, the pipe
// cross-section of the NUPDR/Table VII experiments, squares with holes, and
// gear-like shapes for additional stress tests.
package workload

import (
	"math"

	"mrts/internal/delaunay"
	"mrts/internal/geom"
)

// UnitSquare returns the [0,1]² square.
func UnitSquare() *delaunay.PSLG { return Rectangle(1, 1) }

// Rectangle returns a w×h rectangle anchored at the origin.
func Rectangle(w, h float64) *delaunay.PSLG {
	return &delaunay.PSLG{
		Points: []geom.Point{
			geom.Pt(0, 0), geom.Pt(w, 0), geom.Pt(w, h), geom.Pt(0, h),
		},
		Segments: [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}},
	}
}

// Polygon returns a regular n-gon of the given radius centered at c.
func Polygon(n int, radius float64, c geom.Point) *delaunay.PSLG {
	p := &delaunay.PSLG{}
	for i := 0; i < n; i++ {
		a := 2 * math.Pi * float64(i) / float64(n)
		p.Points = append(p.Points, geom.Pt(c.X+radius*math.Cos(a), c.Y+radius*math.Sin(a)))
	}
	for i := 0; i < n; i++ {
		p.Segments = append(p.Segments, [2]int{i, (i + 1) % n})
	}
	return p
}

// Pipe returns a pipe cross-section: an outer circle with a concentric
// circular hole, both approximated by n-gons. This is the geometry used for
// all NUPDR/ONUPDR experiments in the paper (Table VII: "a pipe
// cross-section geometry was used for all experiments").
func Pipe(n int, outer, inner float64, c geom.Point) *delaunay.PSLG {
	if n < 8 {
		n = 8
	}
	p := &delaunay.PSLG{}
	for i := 0; i < n; i++ {
		a := 2 * math.Pi * float64(i) / float64(n)
		p.Points = append(p.Points, geom.Pt(c.X+outer*math.Cos(a), c.Y+outer*math.Sin(a)))
	}
	for i := 0; i < n; i++ {
		p.Segments = append(p.Segments, [2]int{i, (i + 1) % n})
	}
	base := n
	for i := 0; i < n; i++ {
		a := 2 * math.Pi * float64(i) / float64(n)
		p.Points = append(p.Points, geom.Pt(c.X+inner*math.Cos(a), c.Y+inner*math.Sin(a)))
	}
	for i := 0; i < n; i++ {
		p.Segments = append(p.Segments, [2]int{base + i, base + (i+1)%n})
	}
	p.Holes = []geom.Point{c}
	return p
}

// SquareWithHoles returns the unit square with k small square holes in a
// diagonal arrangement.
func SquareWithHoles(k int) *delaunay.PSLG {
	p := UnitSquare()
	for i := 0; i < k; i++ {
		f := (float64(i) + 0.5) / float64(k)
		cx, cy := f, f
		r := 0.03 / float64(k) * 4
		base := len(p.Points)
		p.Points = append(p.Points,
			geom.Pt(cx-r, cy-r), geom.Pt(cx+r, cy-r), geom.Pt(cx+r, cy+r), geom.Pt(cx-r, cy+r))
		p.Segments = append(p.Segments,
			[2]int{base, base + 1}, [2]int{base + 1, base + 2},
			[2]int{base + 2, base + 3}, [2]int{base + 3, base})
		p.Holes = append(p.Holes, geom.Pt(cx, cy))
	}
	return p
}

// Gear returns a gear-like star polygon with the given number of teeth.
func Gear(teeth int, rOuter, rInner float64, c geom.Point) *delaunay.PSLG {
	if teeth < 3 {
		teeth = 3
	}
	p := &delaunay.PSLG{}
	n := teeth * 2
	for i := 0; i < n; i++ {
		a := 2 * math.Pi * float64(i) / float64(n)
		r := rOuter
		if i%2 == 1 {
			r = rInner
		}
		p.Points = append(p.Points, geom.Pt(c.X+r*math.Cos(a), c.Y+r*math.Sin(a)))
	}
	for i := 0; i < n; i++ {
		p.Segments = append(p.Segments, [2]int{i, (i + 1) % n})
	}
	return p
}

// SizeFunc is a target-edge-length field over the domain.
type SizeFunc func(geom.Point) float64

// Uniform returns a constant sizing function.
func Uniform(h float64) SizeFunc {
	return func(geom.Point) float64 { return h }
}

// GradedRadial returns a sizing function that is h0 at center and grows
// linearly with distance (slope per unit distance) — the graded sizing of
// the NUPDR experiments.
func GradedRadial(center geom.Point, h0, slope float64) SizeFunc {
	return func(p geom.Point) float64 {
		return h0 + slope*p.Dist(center)
	}
}

// GradedAnnular grades around a ring of the given radius: fine near the ring
// (h0), coarser away from it — the typical sizing for a pipe cross-section
// with a boundary layer at the inner wall.
func GradedAnnular(center geom.Point, ringRadius, h0, slope float64) SizeFunc {
	return func(p geom.Point) float64 {
		return h0 + slope*math.Abs(p.Dist(center)-ringRadius)
	}
}

// UniformAreaFor returns the MaxArea refinement bound that yields roughly
// target elements over a domain of the given total area: a quality-refined
// uniform mesh averages about 60% of the maximum triangle area.
func UniformAreaFor(target int, domainArea float64) float64 {
	if target <= 0 {
		return 0
	}
	return domainArea / (0.6 * float64(target))
}

// UniformSizeFor returns the target edge length h that yields roughly target
// elements over a domain of the given area (equilateral triangles of side h
// have area √3/4·h², and sized refinement typically lands near 70% of h).
func UniformSizeFor(target int, domainArea float64) float64 {
	if target <= 0 {
		return 0
	}
	aTri := domainArea / float64(target)
	h := math.Sqrt(aTri * 4 / math.Sqrt(3))
	return h / 0.82
}

package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func pools(workers int) map[string]func() Pool {
	return map[string]func() Pool{
		"workstealing": func() Pool { return NewWorkStealing(workers) },
		"globalqueue":  func() Pool { return NewGlobalQueue(workers) },
	}
}

func TestSubmitAndWait(t *testing.T) {
	for name, mk := range pools(4) {
		t.Run(name, func(t *testing.T) {
			p := mk()
			defer p.Close()
			var n atomic.Int64
			for i := 0; i < 1000; i++ {
				p.Submit(func(*Ctx) { n.Add(1) })
			}
			p.Wait()
			if got := n.Load(); got != 1000 {
				t.Fatalf("ran %d tasks, want 1000", got)
			}
		})
	}
}

func TestNestedSpawn(t *testing.T) {
	for name, mk := range pools(4) {
		t.Run(name, func(t *testing.T) {
			p := mk()
			defer p.Close()
			var n atomic.Int64
			// Binary fan-out: 1 task spawns 2, down to depth 10 → 2^11-1.
			var spawn func(c *Ctx, depth int)
			spawn = func(c *Ctx, depth int) {
				n.Add(1)
				if depth == 0 {
					return
				}
				for k := 0; k < 2; k++ {
					d := depth - 1
					c.Spawn(func(c2 *Ctx) { spawn(c2, d) })
				}
			}
			p.Submit(func(c *Ctx) { spawn(c, 10) })
			p.Wait()
			if got, want := n.Load(), int64(1<<11-1); got != want {
				t.Fatalf("ran %d tasks, want %d", got, want)
			}
		})
	}
}

func TestWaitReusable(t *testing.T) {
	for name, mk := range pools(2) {
		t.Run(name, func(t *testing.T) {
			p := mk()
			defer p.Close()
			var n atomic.Int64
			for phase := 0; phase < 5; phase++ {
				for i := 0; i < 100; i++ {
					p.Submit(func(*Ctx) { n.Add(1) })
				}
				p.Wait()
				if got, want := n.Load(), int64((phase+1)*100); got != want {
					t.Fatalf("phase %d: %d tasks, want %d", phase, got, want)
				}
			}
		})
	}
}

func TestForEachN(t *testing.T) {
	for name, mk := range pools(4) {
		t.Run(name, func(t *testing.T) {
			p := mk()
			defer p.Close()
			var mu sync.Mutex
			seen := make(map[int]int)
			ForEachN(p, 500, func(i int) {
				mu.Lock()
				seen[i]++
				mu.Unlock()
			})
			if len(seen) != 500 {
				t.Fatalf("saw %d distinct indices, want 500", len(seen))
			}
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("index %d ran %d times", i, c)
				}
			}
		})
	}
}

func TestForEachNFromInsideTaskSingleWorker(t *testing.T) {
	// Nested join on a 1-worker pool must not deadlock (the joiner helps).
	for name, mk := range pools(1) {
		t.Run(name, func(t *testing.T) {
			p := mk()
			defer p.Close()
			done := make(chan struct{})
			p.Submit(func(c *Ctx) {
				var n atomic.Int64
				ForEachN(p, 50, func(i int) { n.Add(1) })
				if n.Load() != 50 {
					t.Errorf("nested ForEachN ran %d", n.Load())
				}
				close(done)
			})
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Fatal("nested join deadlocked")
			}
			p.Wait()
		})
	}
}

func TestWorkerIndexInRange(t *testing.T) {
	for name, mk := range pools(3) {
		t.Run(name, func(t *testing.T) {
			p := mk()
			defer p.Close()
			if p.Workers() != 3 {
				t.Fatalf("Workers = %d", p.Workers())
			}
			var bad atomic.Int64
			for i := 0; i < 200; i++ {
				p.Submit(func(c *Ctx) {
					if c.Worker() < 0 || c.Worker() >= 3 {
						bad.Add(1)
					}
					if c.Pool() != p {
						bad.Add(1)
					}
				})
			}
			p.Wait()
			if bad.Load() != 0 {
				t.Fatalf("%d tasks saw bad context", bad.Load())
			}
		})
	}
}

func TestDefaultWorkers(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatal("DefaultWorkers < 1")
	}
	p := NewWorkStealing(0)
	defer p.Close()
	if p.Workers() != DefaultWorkers() {
		t.Fatalf("Workers = %d, want %d", p.Workers(), DefaultWorkers())
	}
	p2 := NewGlobalQueue(-5)
	defer p2.Close()
	if p2.Workers() != DefaultWorkers() {
		t.Fatalf("Workers = %d, want %d", p2.Workers(), DefaultWorkers())
	}
}

func TestNames(t *testing.T) {
	p := NewWorkStealing(1)
	defer p.Close()
	if p.Name() != "workstealing(seed=1)" {
		t.Errorf("Name = %q", p.Name())
	}
	ps := NewWorkStealingSeeded(1, 42)
	defer ps.Close()
	if ps.Name() != "workstealing(seed=42)" {
		t.Errorf("Name = %q", ps.Name())
	}
	g := NewGlobalQueue(1)
	defer g.Close()
	if g.Name() != "globalqueue" {
		t.Errorf("Name = %q", g.Name())
	}
}

func TestManyConcurrentSubmitters(t *testing.T) {
	for name, mk := range pools(4) {
		t.Run(name, func(t *testing.T) {
			p := mk()
			defer p.Close()
			var n atomic.Int64
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 250; i++ {
						p.Submit(func(*Ctx) { n.Add(1) })
					}
				}()
			}
			wg.Wait()
			p.Wait()
			if n.Load() != 2000 {
				t.Fatalf("ran %d, want 2000", n.Load())
			}
		})
	}
}

func TestForEachNZero(t *testing.T) {
	p := NewGlobalQueue(2)
	defer p.Close()
	ForEachN(p, 0, func(int) { t.Fatal("should not run") })
}

func BenchmarkSpawnWorkStealing(b *testing.B) {
	p := NewWorkStealing(4)
	defer p.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Submit(func(*Ctx) {})
	}
	p.Wait()
}

func BenchmarkSpawnGlobalQueue(b *testing.B) {
	p := NewGlobalQueue(4)
	defer p.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Submit(func(*Ctx) {})
	}
	p.Wait()
}

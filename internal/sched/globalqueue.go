package sched

import (
	"sync"
	"sync/atomic"

	"mrts/internal/obs"
)

// gqPool is the GCD-like scheduler: a single unbounded FIFO queue feeding a
// fixed thread pool. Compared to work stealing it has no task locality and a
// single point of contention — the structural difference Table VII of the
// paper measures between the TBB and GCD builds.
type gqPool struct {
	tracer atomic.Pointer[obs.Tracer]
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Task
	head   int
	closed bool
	q      *quiescence
	wg     sync.WaitGroup
	nw     int
}

// NewGlobalQueue returns a global-queue pool with the given number of
// workers (<= 0 selects DefaultWorkers).
func NewGlobalQueue(workers int) Pool {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	p := &gqPool{q: newQuiescence(), nw: workers}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.run(i)
	}
	return p
}

func (p *gqPool) Name() string { return "globalqueue" }

// SetTracer implements Pool.
func (p *gqPool) SetTracer(tr *obs.Tracer) { p.tracer.Store(tr) }

// runTask executes t inside a sched.run span.
func (p *gqPool) runTask(ctx *Ctx, t Task) {
	sp := p.tracer.Load().Start(obs.KindSchedRun, uint64(max(ctx.worker, 0)))
	t(ctx)
	sp.End(int64(ctx.worker))
	p.q.dec()
}

func (p *gqPool) Workers() int { return p.nw }

func (p *gqPool) Submit(t Task) {
	p.q.inc()
	p.mu.Lock()
	p.queue = append(p.queue, t)
	p.cond.Signal()
	p.mu.Unlock()
}

func (p *gqPool) spawnFrom(_ int, t Task) { p.Submit(t) }

func (p *gqPool) Wait() { p.q.wait() }

func (p *gqPool) Close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

// pop removes the next task under p.mu, compacting the backing slice lazily.
func (p *gqPool) popLocked() (Task, bool) {
	if p.head >= len(p.queue) {
		return nil, false
	}
	t := p.queue[p.head]
	p.queue[p.head] = nil
	p.head++
	if p.head > 64 && p.head*2 >= len(p.queue) {
		n := copy(p.queue, p.queue[p.head:])
		for i := n; i < len(p.queue); i++ {
			p.queue[i] = nil
		}
		p.queue = p.queue[:n]
		p.head = 0
	}
	return t, true
}

func (p *gqPool) run(w int) {
	defer p.wg.Done()
	ctx := &Ctx{pool: p, worker: w}
	for {
		p.mu.Lock()
		for {
			if t, ok := p.popLocked(); ok {
				p.mu.Unlock()
				p.runTask(ctx, t)
				break
			}
			if p.closed {
				p.mu.Unlock()
				return
			}
			p.cond.Wait()
		}
	}
}

func (p *gqPool) tryRunOne(helperWorker int) bool {
	p.mu.Lock()
	t, ok := p.popLocked()
	p.mu.Unlock()
	if !ok {
		return false
	}
	ctx := &Ctx{pool: p, worker: helperWorker}
	p.runTask(ctx, t)
	return true
}

package sched

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"mrts/internal/obs"
)

// wsPool is the TBB-like scheduler: each worker owns a deque; it pops its
// own tasks LIFO (depth-first, cache-friendly) and steals FIFO from victims
// when idle.
type wsPool struct {
	deques  []*deque
	rngs    []*wsRand // per-worker seeded victim selectors
	seed    int64
	tracer  atomic.Pointer[obs.Tracer]
	q       *quiescence
	wake    *sync.Cond
	wakeMu  sync.Mutex
	sleep   int // workers currently parked
	closed  bool
	wg      sync.WaitGroup
	nextSub int // round-robin cursor for external submissions
	subMu   sync.Mutex
}

// wsRand is a mutex-guarded rand.Rand: each worker owns one, but the
// tryRunOne helpers (w < 0 callers) share worker 0's, so it must tolerate
// concurrent use.
type wsRand struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func (r *wsRand) intn(n int) int {
	r.mu.Lock()
	v := r.rng.Intn(n)
	r.mu.Unlock()
	return v
}

type deque struct {
	mu    sync.Mutex
	tasks []Task
}

func (d *deque) pushBottom(t Task) {
	d.mu.Lock()
	d.tasks = append(d.tasks, t)
	d.mu.Unlock()
}

func (d *deque) popBottom() (Task, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.tasks)
	if n == 0 {
		return nil, false
	}
	t := d.tasks[n-1]
	d.tasks[n-1] = nil
	d.tasks = d.tasks[:n-1]
	return t, true
}

func (d *deque) stealTop() (Task, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.tasks) == 0 {
		return nil, false
	}
	t := d.tasks[0]
	copy(d.tasks, d.tasks[1:])
	d.tasks[len(d.tasks)-1] = nil
	d.tasks = d.tasks[:len(d.tasks)-1]
	return t, true
}

// NewWorkStealing returns a work-stealing pool with the given number of
// workers (<= 0 selects DefaultWorkers) and a fixed victim-selection seed.
func NewWorkStealing(workers int) Pool {
	return NewWorkStealingSeeded(workers, 1)
}

// NewWorkStealingSeeded is NewWorkStealing with an explicit seed for the
// steal-victim selectors. Worker w draws from a rand.Rand seeded with
// seed+w, never from the global source, so a steal sequence is reproducible
// from the seed alone — the property the simulation harness replays on. The
// seed appears in Name() so failure output identifies the schedule.
func NewWorkStealingSeeded(workers int, seed int64) Pool {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	p := &wsPool{
		deques: make([]*deque, workers),
		rngs:   make([]*wsRand, workers),
		seed:   seed,
		q:      newQuiescence(),
	}
	p.wake = sync.NewCond(&p.wakeMu)
	for i := range p.deques {
		p.deques[i] = &deque{}
		p.rngs[i] = &wsRand{rng: rand.New(rand.NewSource(seed + int64(i)))}
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.run(i)
	}
	return p
}

func (p *wsPool) Name() string { return fmt.Sprintf("workstealing(seed=%d)", p.seed) }

// SetTracer implements Pool.
func (p *wsPool) SetTracer(tr *obs.Tracer) { p.tracer.Store(tr) }

// runTask executes t on worker w inside a sched.run span.
func (p *wsPool) runTask(ctx *Ctx, t Task) {
	sp := p.tracer.Load().Start(obs.KindSchedRun, uint64(max(ctx.worker, 0)))
	t(ctx)
	sp.End(int64(ctx.worker))
	p.q.dec()
}

func (p *wsPool) Workers() int { return len(p.deques) }

func (p *wsPool) Submit(t Task) {
	p.subMu.Lock()
	w := p.nextSub
	p.nextSub = (p.nextSub + 1) % len(p.deques)
	p.subMu.Unlock()
	p.enqueue(w, t)
}

func (p *wsPool) spawnFrom(w int, t Task) {
	if w < 0 || w >= len(p.deques) {
		p.Submit(t)
		return
	}
	p.enqueue(w, t)
}

func (p *wsPool) enqueue(w int, t Task) {
	p.q.inc()
	p.deques[w].pushBottom(t)
	p.wakeMu.Lock()
	if p.sleep > 0 {
		p.wake.Signal()
	}
	p.wakeMu.Unlock()
}

func (p *wsPool) Wait() { p.q.wait() }

func (p *wsPool) Close() {
	p.wakeMu.Lock()
	p.closed = true
	p.wake.Broadcast()
	p.wakeMu.Unlock()
	p.wg.Wait()
}

// grab finds a task for worker w: own deque first, then steal.
func (p *wsPool) grab(w int) (Task, bool) {
	if w >= 0 {
		if t, ok := p.deques[w].popBottom(); ok {
			return t, true
		}
	}
	// Steal: seeded-random start, sweep all victims. Helpers (w < 0) share
	// worker 0's selector.
	n := len(p.deques)
	rng := p.rngs[0]
	if w >= 0 {
		rng = p.rngs[w]
	}
	start := rng.intn(n)
	for k := 0; k < n; k++ {
		v := (start + k) % n
		if v == w {
			continue
		}
		if t, ok := p.deques[v].stealTop(); ok {
			p.tracer.Load().Emit(obs.KindSchedSteal, uint64(max(w, 0)), int64(v))
			return t, true
		}
	}
	return nil, false
}

func (p *wsPool) run(w int) {
	defer p.wg.Done()
	ctx := &Ctx{pool: p, worker: w}
	for {
		t, ok := p.grab(w)
		if ok {
			p.runTask(ctx, t)
			continue
		}
		// Park. Re-check for work under the wake lock: enqueue pushes the
		// task before acquiring the lock, so a re-grab here cannot miss a
		// task enqueued before our park decision (no lost wakeups).
		p.wakeMu.Lock()
		if p.closed {
			p.wakeMu.Unlock()
			return
		}
		if t, ok := p.grab(w); ok {
			p.wakeMu.Unlock()
			p.runTask(ctx, t)
			continue
		}
		p.sleep++
		p.wake.Wait()
		p.sleep--
		closed := p.closed
		p.wakeMu.Unlock()
		if closed {
			return
		}
	}
}

func (p *wsPool) tryRunOne(helperWorker int) bool {
	t, ok := p.grab(helperWorker)
	if !ok {
		return false
	}
	ctx := &Ctx{pool: p, worker: helperWorker}
	p.runTask(ctx, t)
	return true
}

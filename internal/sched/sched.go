// Package sched is the computing layer substrate of the MRTS: task
// schedulers that execute message-handler work over a fixed set of workers
// (PEs). The paper's implementation wraps Intel TBB or Apple GCD; this
// package provides two structurally analogous schedulers behind one
// interface:
//
//   - WorkStealing: per-worker LIFO deques with FIFO stealing, the TBB model;
//   - GlobalQueue: a single shared FIFO feeding a thread pool, the GCD model.
//
// Both support nested parallelism: a task may spawn subtasks through its
// *Ctx, and joining helpers (ForEachN) execute pending work while waiting so
// that blocked joins cannot deadlock the pool.
package sched

import (
	"runtime"
	"sync"

	"mrts/internal/obs"
)

// Task is a unit of work executed by a pool worker. Tasks are expected to
// run to completion without blocking (the paper's recommendation for message
// handler tasks); use Ctx.Spawn for nested parallelism.
type Task func(*Ctx)

// Ctx is the execution context handed to every task.
type Ctx struct {
	pool   Pool
	worker int
}

// Worker returns the index of the worker executing the task, in [0,
// Workers()).
func (c *Ctx) Worker() int { return c.worker }

// Pool returns the pool executing the task.
func (c *Ctx) Pool() Pool { return c.pool }

// Spawn schedules a subtask. On a work-stealing pool the subtask goes to the
// current worker's local deque (LIFO); on a global-queue pool it is appended
// to the shared queue.
func (c *Ctx) Spawn(t Task) { c.pool.spawnFrom(c.worker, t) }

// Pool schedules tasks over a fixed set of workers.
type Pool interface {
	// Submit schedules a task from outside the pool.
	Submit(t Task)
	// Wait blocks until every submitted task (including nested spawns) has
	// completed. The pool remains usable afterwards.
	Wait()
	// Close shuts down the workers. The pool must be quiescent.
	Close()
	// Workers returns the number of worker goroutines.
	Workers() int
	// Name identifies the scheduler flavor ("workstealing" or "globalqueue").
	Name() string
	// SetTracer installs a structured event tracer: task executions are
	// recorded as sched.run spans and successful steals as sched.steal
	// instants. A nil tracer (the default) disables recording.
	SetTracer(tr *obs.Tracer)

	// spawnFrom schedules a task from worker w.
	spawnFrom(w int, t Task)
	// tryRunOne executes one pending task in the caller's goroutine, if any
	// is immediately available. It reports whether a task ran. Used by
	// joining helpers to help instead of blocking.
	tryRunOne(helperWorker int) bool
}

// DefaultWorkers returns the worker count used when a non-positive count is
// requested.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// ForEachN runs f(0) … f(n-1) on the pool and returns when all have
// completed. It may be called from inside a task (nested join): while
// waiting, the caller helps execute pending tasks, so the join cannot
// deadlock even on a single-worker pool.
func ForEachN(p Pool, n int, f func(i int)) {
	if n <= 0 {
		return
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		p.Submit(func(*Ctx) {
			defer wg.Done()
			f(i)
		})
	}
	// Help while waiting.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	for {
		select {
		case <-done:
			return
		default:
		}
		if !p.tryRunOne(-1) {
			// Nothing immediately runnable; yield and re-check.
			runtime.Gosched()
		}
	}
}

// quiescence tracks outstanding-task counts shared by both pool flavors.
type quiescence struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending int
}

func newQuiescence() *quiescence {
	q := &quiescence{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *quiescence) inc() {
	q.mu.Lock()
	q.pending++
	q.mu.Unlock()
}

func (q *quiescence) dec() {
	q.mu.Lock()
	q.pending--
	if q.pending == 0 {
		q.cond.Broadcast()
	}
	q.mu.Unlock()
}

func (q *quiescence) wait() {
	q.mu.Lock()
	for q.pending != 0 {
		q.cond.Wait()
	}
	q.mu.Unlock()
}

# Standard developer entry points. Everything is stdlib-only; no network
# access is required for any target.

GO ?= go

.PHONY: all build vet test race bench bench-quick examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark harness: every figure and table of the paper.
bench:
	$(GO) test -bench=. -benchmem .

# One quick iteration of every experiment at reduced scale.
bench-quick:
	$(GO) run ./cmd/mrtsbench -exp all -scale 0.1

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/outofcore-grid
	$(GO) run ./examples/nupdr-pipe
	$(GO) run ./examples/pcdm-domains
	$(GO) run ./examples/fault-tolerance

clean:
	$(GO) clean ./...

# Standard developer entry points. Everything is stdlib-only; no network
# access is required for any target.

GO ?= go

.PHONY: all build vet test race bench bench-quick bench-pipeline bench-tiers bench-compress bench-routing bench-specul bench-meshio trace bench-json bench-baseline lint sim-soak e2e-multiproc export examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark harness: every figure and table of the paper.
bench:
	$(GO) test -bench=. -benchmem .

# One quick iteration of every experiment at reduced scale.
bench-quick:
	$(GO) run ./cmd/mrtsbench -exp all -scale 0.1

# The swap I/O scheduler sweep: workers × prefetch depth on OUPDR
# (override: make bench-pipeline SCALE=0.5).
bench-pipeline:
	$(GO) run ./cmd/mrtsbench -exp pipeline -scale $(SCALE)

# The tiered-storage capacity sweep: OPCDM from pure disk through a bounded
# remote-memory lease to pure remote memory
# (override: make bench-tiers SCALE=0.5).
bench-tiers:
	$(GO) run ./cmd/mrtsbench -exp tiers -scale $(SCALE)

# The tier-0.5 compression sweep (off vs on) plus the swap hot path's
# steady-state allocation audit (override: make bench-compress SCALE=0.5).
bench-compress:
	$(GO) run ./cmd/mrtsbench -exp compress,alloc -scale $(SCALE)

# The first-hop routing sweep: four locators × two migration regimes
# (override: make bench-routing SCALE=0.5 DIR=placed to run one locator).
DIR ?=
bench-routing:
	$(GO) run ./cmd/mrtsbench -exp routing -scale $(SCALE) -dir "$(DIR)"

# Speculative refinement vs bulk-sync: conflict-probability sweep
# (override: make bench-specul SCALE=1 for the full-size mesh).
bench-specul:
	$(GO) run ./cmd/mrtsbench -exp specul -scale $(SCALE) -pes 2

# The meshstore data path: synthetic chunk write/read MB/s plus the OUPDR
# streaming-export and 2-node-restore round trip
# (override: make bench-meshio SCALE=1 for the full-size mesh).
bench-meshio:
	$(GO) run ./cmd/mrtsbench -exp meshio -scale $(SCALE)

# Capture a Perfetto-loadable event trace of one experiment
# (override: make trace EXP=fig8 SCALE=0.25).
EXP ?= tab4
SCALE ?= 0.25
trace:
	$(GO) run ./cmd/mrtsbench -exp $(EXP) -scale $(SCALE) -trace trace_$(EXP).json
	@echo "open trace_$(EXP).json at https://ui.perfetto.dev"

# Machine-readable metrics for the whole evaluation.
bench-json:
	$(GO) run ./cmd/mrtsbench -exp all -scale $(SCALE) -json BENCH.json

# Regenerate the CI benchmark-regression baseline (same config as the
# bench-smoke job in .github/workflows/ci.yml; commit the result).
bench-baseline:
	$(GO) run ./cmd/mrtsbench -exp tab1,tab4,fig8,faults,pipeline,tiers,alloc,compress,routing,specul,meshio -scale 0.05 -pes 2 -json ci/bench-baseline.json

# 100-seed deterministic-simulation soak (the nightly CI job runs the same
# sweep under -race). Failing seeds are listed in the test output and in
# internal/sim/sim-failed-seeds.txt; replay one with
#   go test ./internal/sim -run Soak -sim.seed <seed>
sim-soak:
	$(GO) test ./internal/sim/ -run Soak -sim.seeds 100 -count=1 -timeout 30m

# Packages that must take time from an injected clock.Clock so the
# deterministic simulation harness can virtualize them. Only the clock
# implementations themselves may call the time package for "now"/sleeping.
CLOCKED_PKGS = internal/core internal/comm internal/storage internal/swapio internal/sched internal/cluster internal/tier internal/bufpool

# gofmt check (staticcheck additionally runs in CI, where installing the
# pinned version is possible), plus two layering rules: the clock-injection
# rule (no package below cmd/ that the simulator drives may read real time
# directly) and the transport-encapsulation rule (all raw TCP lives behind
# internal/comm — everything else addresses peers by NodeID through an
# Endpoint, so the simulator can swap the transport).
lint:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "files need gofmt:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	@out="$$(grep -rnE 'time\.(Now|Sleep|After|NewTimer|NewTicker|Tick)\(' --include='*.go' --exclude='*_test.go' $(CLOCKED_PKGS) || true)"; \
	if [ -n "$$out" ]; then echo "direct time calls in clocked packages (inject clock.Clock instead):"; echo "$$out"; exit 1; fi
	@out="$$(grep -rnE 'net\.(Dial|Listen)\(' --include='*.go' internal cmd examples | grep -v '^internal/comm/' || true)"; \
	if [ -n "$$out" ]; then echo "raw net.Dial/net.Listen outside internal/comm (use comm endpoints):"; echo "$$out"; exit 1; fi
	@out="$$(grep -rnE '(Send|Post|PostMulticast|RequestMigration|Migrate)\([^)]*\.Home' --include='*.go' internal cmd examples | grep -v '^internal/core/' || true)"; \
	if [ -n "$$out" ]; then echo "routing decision on ptr.Home outside internal/core (go through the Locator seam):"; echo "$$out"; exit 1; fi
	@out="$$(grep -rn '\.mshc' --include='*.go' --exclude='*_test.go' internal cmd examples | grep -v '^internal/meshstore/' || true)"; \
	if [ -n "$$out" ]; then echo "mesh chunk files touched outside internal/meshstore (go through Writer/Store/IsChunkName):"; echo "$$out"; exit 1; fi

# The multi-process e2e lane CI runs: a 3-process loopback OUPDR cluster
# that loses one worker after the first phase barrier and relaunches it
# from its checkpoint, checked block for block against a single-process
# baseline of the same problem — then the export/restore drill: a 3-node
# run exports (with one node SIGKILLed mid-export and relaunched), the
# store verifies offline, and a 2-node restore reproduces the baseline.
e2e-multiproc:
	$(GO) build -o bin/meshnode ./cmd/meshnode
	$(GO) build -o bin/meshctl ./cmd/meshctl
	bin/meshctl -meshnode bin/meshnode -nodes 1 -blocks 6 -elements 20000 -phases 3 -dir e2e-run/baseline -out baseline.txt
	bin/meshctl -meshnode bin/meshnode -nodes 3 -blocks 6 -elements 20000 -phases 3 -kill 2 -kill-after 0 -dir e2e-run/cluster -baseline baseline.txt
	bin/meshctl export -meshnode bin/meshnode -nodes 3 -blocks 6 -elements 20000 -phases 2 -kill-export 2 -store e2e-run/store -dir e2e-run/export -baseline baseline.txt
	bin/meshctl verify -store e2e-run/store -deep
	bin/meshctl restore -store e2e-run/store -nodes 2 -baseline baseline.txt

# Streaming mesh export end to end: a 3-process cluster meshes, frames every
# block into an on-disk chunk store, and the store verifies offline
# (inspect it with: go run ./cmd/meshserve -store export-run/store).
export:
	$(GO) build -o bin/meshnode ./cmd/meshnode
	$(GO) build -o bin/meshctl ./cmd/meshctl
	bin/meshctl export -meshnode bin/meshnode -nodes 3 -blocks 6 -elements 20000 -phases 2 -store export-run/store -dir export-run/work
	bin/meshctl verify -store export-run/store -deep

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/outofcore-grid
	$(GO) run ./examples/nupdr-pipe
	$(GO) run ./examples/pcdm-domains
	$(GO) run ./examples/fault-tolerance

clean:
	$(GO) clean ./...
